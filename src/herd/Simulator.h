//===- Simulator.h - Single-event axiomatic simulation (herd) -*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The herd-style simulator (Sec. 8.3): enumerate the candidate executions
/// of a litmus test (every rf map times every coherence order), discard the
/// value-inconsistent ones, check each against a model, and collect the
/// allowed outcomes. A test's headline question — "is the final condition
/// observable under this model?" — is answered by whether any allowed
/// candidate satisfies it.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_HERD_SIMULATOR_H
#define CATS_HERD_SIMULATOR_H

#include "litmus/Compiler.h"
#include "model/Model.h"
#include "obs/Witness.h"

#include <array>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace cats {

/// Result of simulating one test under one model.
struct SimulationResult {
  std::string TestName;
  std::string ModelName;
  /// Raw candidate count (rf choices x coherence orders).
  unsigned long long CandidatesTotal = 0;
  /// Candidates surviving value-consistency.
  unsigned long long CandidatesConsistent = 0;
  /// Candidates allowed by the model.
  unsigned long long CandidatesAllowed = 0;
  /// Distinct outcomes of allowed candidates.
  std::set<Outcome> AllowedOutcomes;
  /// Distinct outcomes over all consistent candidates (any model).
  /// Populated by the single-model simulate(); in a multi-model sweep the
  /// set is shared and lives on MultiSimulationResult instead.
  std::set<Outcome> ConsistentOutcomes;
  /// True if some allowed candidate satisfies the test's final condition.
  bool ConditionReachable = false;

  /// "Allow"/"Forbid" verdict string for the final condition.
  const char *verdict() const {
    return ConditionReachable ? "Allow" : "Forbid";
  }
};

/// Result of simulating one test under a set of models in a single
/// shared-enumeration pass. The candidate space of a test does not depend
/// on the model, so the model-independent fields live here, computed once,
/// while perModel() carries the verdict-specific counts.
struct MultiSimulationResult {
  std::string TestName;
  /// Raw candidate count (rf choices x coherence orders); shared.
  unsigned long long CandidatesTotal = 0;
  /// Candidates surviving value-consistency; shared.
  unsigned long long CandidatesConsistent = 0;
  /// Distinct outcomes over all consistent candidates; shared.
  std::set<Outcome> ConsistentOutcomes;
  /// One entry per requested model, in request order. The shared counts
  /// above are mirrored into each entry; the shared ConsistentOutcomes set
  /// is not (copying it per model dominates take() on wide sweeps) except
  /// when exactly one model was requested, so simulate()'s detached return
  /// value stays a complete SimulationResult.
  std::vector<SimulationResult> PerModel;
  /// Verdict evidence, only populated when witness capture was enabled
  /// (docs/explain.md): per model one witness backing its verdict, plus
  /// at most one model-independent prune-cut witness from the incremental
  /// backend. Always empty otherwise, keeping reports byte-identical.
  std::vector<obs::Witness> Witnesses;

  /// The entry for model \p Name; nullptr when the model was not swept.
  const SimulationResult *forModel(const std::string &Name) const;
};

/// Visits every candidate execution of \p Compiled (consistent or not).
/// Return false from the callback to stop early.
void forEachCandidate(const CompiledTest &Compiled,
                      const std::function<bool(const Candidate &)> &Fn);

/// Which engine walks the candidate space behind simulateAll
/// (docs/enumeration.md). All three produce identical verdicts and outcome
/// sets; the differential harness (tests/differential.cpp) pins them to
/// each other over the litmus catalogue and generated diy corpora.
enum class JudgeBackend : uint8_t {
  /// Materialize every full candidate and judge it afterwards — the
  /// reference semantics the other backends are checked against.
  Naive,
  /// Incremental backtracking search (src/herd/Enumerator.cpp): commit
  /// rf then per-location coherence choices, prune a partial assignment
  /// as soon as po-loc | com is cyclic, and enumerate only canonical
  /// representatives of the thread-symmetry group with multiplicity
  /// accounting. Byte-identical results to Naive; the default.
  Pruned,
  /// Pruned search plus the bounded outcome memo of src/bmc: candidates
  /// whose outcome is already proven allowed under every model are not
  /// re-judged. Verdicts and outcome sets stay exact; CandidatesAllowed
  /// becomes a lower bound. Opt-in (--backend bmc).
  Bmc,
};

/// Display/CLI name: "naive", "pruned", "bmc".
const char *judgeBackendName(JudgeBackend B);

/// Parses a CLI backend name; returns false on unknown input.
bool parseJudgeBackend(const std::string &Name, JudgeBackend &Out);

/// Counters produced by one incremental-enumeration pass; flushed to the
/// judge.pruned.* / judge.symmetry.* / judge.bmc.* metrics by
/// MultiModelChecker::take (docs/observability.md).
struct EnumerationStats {
  /// Partial rf/co assignments abandoned mid-search on a po-loc | com
  /// cycle (each cut removes a whole subtree of candidates).
  unsigned long long PartialCuts = 0;
  /// Consistent candidates never materialized because every completion
  /// was provably rejected by SC PER LOCATION (the pruned mass).
  unsigned long long PrunedCandidates = 0;
  /// Canonical leaves actually judged by the models.
  unsigned long long JudgedCandidates = 0;
  /// Symmetric orbit images accounted without re-judging.
  unsigned long long SymmetryReused = 0;
  /// Leaves skipped by the bmc outcome memo (Bmc backend only).
  unsigned long long BmcOutcomeHits = 0;
};

/// Accumulates per-model verdicts over a stream of candidates, computing
/// the model-independent work (consistency counts, outcome keys, final
/// condition evaluation) exactly once per candidate. Feed every candidate
/// of one compiled test, then call take().
///
/// This is the engine under both simulate() overloads and the sweep
/// subsystem; instances are single-use and not thread-safe (one checker
/// per worker).
class MultiModelChecker {
public:
  MultiModelChecker(const CompiledTest &Compiled,
                    std::vector<const Model *> Models);

  /// Accounts one candidate under every model (the naive path).
  void feed(const Candidate &Cand);

  //===--------------------------------------------------------------------===//
  // Incremental-backend interface (src/herd/Enumerator.cpp)
  //
  // The pruned search never materializes full Candidates: it accounts the
  // model-independent tallies in bulk (closed forms per rf choice), judges
  // one scratch execution per canonical leaf, and replays the verdict over
  // the leaf's symmetry orbit. A checker instance is driven either by
  // feed() or by these calls, never both.
  //===--------------------------------------------------------------------===//

  /// Adds \p N raw candidates to the shared total.
  void accountTotal(unsigned long long N) { Result.CandidatesTotal += N; }

  /// Adds \p N value-consistent candidates to the shared count.
  void accountConsistent(unsigned long long N) {
    Result.CandidatesConsistent += N;
  }

  /// Records one model-independent consistent outcome. First sighting of
  /// a key pays the set insert and the final-condition evaluation; repeats
  /// are a hash lookup (the note then also feeds accountImage).
  void accountConsistentOutcome(const Outcome &O);

  unsigned long long consistentCount() const {
    return Result.CandidatesConsistent;
  }

  size_t numModels() const { return Models.size(); }

  /// Checks \p Exe against every model; the returned buffer is owned by
  /// the checker and reused across calls. No accounting happens here —
  /// pair with accountImage per orbit image.
  ///
  /// The checks exploit the registry's model-strength forest
  /// (strongerModel): models are visited stronger-first, and a model whose
  /// designated ancestor in the set already allowed \p Exe is marked
  /// allowed without running its axioms. The shortcut is disabled while
  /// metrics are on so the per-axiom judge.kill.* tallies stay exact; the
  /// differential harness proves the two paths agree.
  const std::vector<Verdict> &judge(const Execution &Exe);

  /// As above, with the enumerator's incrementally-maintained SC verdict:
  /// \p ScAllowed must equal acyclic(po | com) on \p Exe — the Lemma 4.1
  /// SC reference, which the enumerator reads off its own partial graph
  /// instead of rebuilding com per leaf. The boolean-only path then
  /// answers SC (and, through the implication shortcut, every model SC
  /// dominates) without touching the execution's derived relations. The
  /// hint is trusted, so the differential harness pins this path to the
  /// un-hinted one over the catalogue and the diy corpora.
  const std::vector<Verdict> &judge(const Execution &Exe, bool ScAllowed);

  /// Accounts one candidate (an orbit image of a judged leaf) with the
  /// verdicts of its canonical representative and its own outcome.
  void accountImage(const std::vector<Verdict> &Verdicts, const Outcome &O);

  /// Accounts \p N consistent candidates whose every coherence completion
  /// was pruned on a po-loc | com cycle: all of them are rejected by SC
  /// PER LOCATION under every model, so the per-axiom kill tallies credit
  /// that axiom (the naive path may additionally blame other axioms for
  /// the same candidates, hence the documented >= semantics of
  /// judge.kill.*).
  void accountPrunedMass(unsigned long long N);

  /// Hands the enumerator's counters over for the metrics flush in take().
  void setEnumerationStats(const EnumerationStats &S) {
    Stats = S;
    HaveStats = true;
  }

  /// Switches on witness capture (docs/explain.md): the judge() path runs
  /// the full four-axiom check per model (no implication shortcut, no
  /// reference formulations — a witness needs the failing axiom, not just
  /// the bit) and the checker snapshots, per model, the first satisfying
  /// execution it sees allowed and the first it sees killed; take() then
  /// assembles them into Result.Witnesses. Call before the first
  /// candidate; off by default, with zero cost when off.
  void enableWitnessCapture();

  /// True when enableWitnessCapture() was called.
  bool witnessCapture() const { return WitnessMode; }

  /// True once a prune-cut witness has been recorded (the enumerator only
  /// records the first cut).
  bool havePruneCutWitness() const { return HaveCut; }

  /// Records the first prune cut of the incremental backend: \p Partial
  /// is the scratch execution at the cut and \p Cycle the po-loc | com
  /// cycle on its partial graph (see Enumerator.cpp). Witness mode only.
  void recordPruneCut(const Execution &Partial,
                      std::vector<LabeledEdge> Cycle);

  /// Finalizes and returns the result; the checker is spent afterwards.
  MultiSimulationResult take();

private:
  const Condition &Final;
  std::vector<const Model *> Models;
  MultiSimulationResult Result;
  /// Per-model, per-axiom counts of candidates each axiom killed,
  /// tallied in plain locals (the inner loop never touches an atomic)
  /// and flushed to the metrics registry by take(). Only maintained when
  /// metrics were enabled at construction.
  bool Metrics = false;
  std::vector<std::array<unsigned long long, 4>> AxiomKills;
  /// Reused verdict buffer for judge().
  std::vector<Verdict> JudgeBuf;
  /// Shared body of the judge() overloads; \p ScHint is null when no
  /// precomputed SC verdict is available.
  const std::vector<Verdict> &judgeImpl(const Execution &Exe,
                                        const bool *ScHint);
  /// Index (into Models) of each model's designated stronger ancestor
  /// within this set, or -1; drives the judge() implication shortcut.
  std::vector<int> StrongerIdx;
  /// Model indices in stronger-before-weaker order, so an ancestor's
  /// verdict is always final before its descendants consult it.
  std::vector<size_t> EvalOrder;
  /// Which models the boolean-only judge() path can answer through a
  /// Lemma 4.1 reference formulation instead of the four-axiom check.
  enum class RefFormulation : uint8_t { None, Sc, Tso };
  std::vector<RefFormulation> RefPath;
  /// Incremental-path memo per distinct outcome key: whether the outcome
  /// satisfies the final condition, and which models (bit I = Models[I],
  /// capped at 64) allowed some candidate with this outcome. accountImage
  /// only bumps counters and ORs the mask; take() reconstructs each
  /// model's AllowedOutcomes set and ConditionReachable flag from the
  /// notes in one ordered pass, so no per-leaf ordered-set inserts happen
  /// at all. feed() leaves the masks empty: the naive path stays the
  /// plain reference loop and take()'s reconstruction is then a no-op.
  struct OutcomeNote {
    bool Satisfies = false;
    /// Whether the outcome itself has been inserted into the shared
    /// ConsistentOutcomes set. accountImage creates notes ahead of the
    /// closed-form pass, so note existence alone does not imply set
    /// membership.
    bool InConsistentSet = false;
    unsigned long long AllowedMask = 0;
  };
  std::unordered_map<std::string, OutcomeNote> OutcomeNotes;
  EnumerationStats Stats;
  bool HaveStats = false;
  /// Witness capture (enableWitnessCapture). Slots hold, per model, the
  /// first satisfying execution seen allowed and the first seen killed;
  /// the cut slot holds the first enumerator prune cut. take() turns the
  /// slots into Result.Witnesses.
  bool WitnessMode = false;
  struct WitnessSlot {
    bool HaveAllow = false;
    bool HaveKill = false;
    Execution AllowExe, KillExe;
    Outcome AllowOut, KillOut;
    Axiom KillAxiom = Axiom::ScPerLocation;
  };
  std::vector<WitnessSlot> Slots;
  /// The execution judgeImpl last checked; accountImage consumes it on
  /// the first (identity) orbit image, whose outcome belongs to exactly
  /// this execution. Null between leaves.
  const Execution *PendingJudged = nullptr;
  bool HaveCut = false;
  Execution CutExe;
  std::vector<LabeledEdge> CutCycle;
  /// feed()/accountImage capture body.
  void captureWitness(size_t ModelIdx, const Verdict &V, const Execution &Exe,
                      const Outcome &O);
};

/// Knobs of one simulateAll run beyond the model set.
struct SimulateOptions {
  JudgeBackend Backend = JudgeBackend::Pruned;
  /// Capture verdict witnesses (MultiSimulationResult::Witnesses). The
  /// capture piggybacks on the main pass; verdicts the pass never
  /// materialized evidence for (pruned subtrees, bmc outcome hits) are
  /// completed afterwards by a targeted naive walk.
  bool Witness = false;
};

/// Runs one shared candidate enumeration of \p Compiled and checks every
/// model in \p Models against each candidate, with explicit options.
MultiSimulationResult simulateAll(const CompiledTest &Compiled,
                                  const std::vector<const Model *> &Models,
                                  const SimulateOptions &Opts);

/// Fills the witnesses missing from \p Result.Witnesses so every model in
/// \p Models has one backing its verdict: Allow verdicts get an allowed
/// execution realizing the final condition, Forbid verdicts the first
/// failing axiom's cycle on a satisfying candidate (or an
/// unreachable-outcome marker when no consistent candidate satisfies the
/// condition). Walks candidates naively with per-model early stop; cheap
/// on litmus-sized tests. Existing witnesses (matched by model name) are
/// kept untouched.
void completeWitnesses(const CompiledTest &Compiled,
                       const std::vector<const Model *> &Models,
                       MultiSimulationResult &Result);

/// Runs one shared candidate enumeration of \p Compiled and checks every
/// model in \p Models against each candidate, using the default backend
/// (Pruned — byte-identical to Naive, just faster).
MultiSimulationResult simulateAll(const CompiledTest &Compiled,
                                  const std::vector<const Model *> &Models);

/// As above with an explicit judging backend.
MultiSimulationResult simulateAll(const CompiledTest &Compiled,
                                  const std::vector<const Model *> &Models,
                                  JudgeBackend Backend);

/// Convenience overload: compiles \p Test first. Asserts on compile errors
/// (use CompiledTest::compile directly for fallible input).
MultiSimulationResult simulateAll(const LitmusTest &Test,
                                  const std::vector<const Model *> &Models);

/// As above with an explicit judging backend.
MultiSimulationResult simulateAll(const LitmusTest &Test,
                                  const std::vector<const Model *> &Models,
                                  JudgeBackend Backend);

/// Runs the full simulation of \p Compiled under \p M (the one-model case
/// of simulateAll).
SimulationResult simulate(const CompiledTest &Compiled, const Model &M);

/// Convenience overload: compiles \p Test first. Asserts on compile errors
/// (use CompiledTest::compile directly for fallible input).
SimulationResult simulate(const LitmusTest &Test, const Model &M);

/// True if the final condition of \p Test is reachable under \p M.
bool allowedBy(const LitmusTest &Test, const Model &M);

/// Renders \p Result in the classic herd output format:
///
///   Test mp Allowed
///   States 3
///   1:r1=0; 1:r2=0;
///   ...
///   Ok
///   Condition exists (1:r1=1 /\ 1:r2=0)
///
/// \p Final is the test's condition (echoed in the footer).
std::string herdStyleReport(const SimulationResult &Result,
                            const Condition &Final);

} // namespace cats

#endif // CATS_HERD_SIMULATOR_H
