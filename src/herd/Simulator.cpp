//===- Simulator.cpp - Single-event axiomatic simulation (herd) -----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "herd/Simulator.h"

#include "obs/Metrics.h"

using namespace cats;

void cats::forEachCandidate(
    const CompiledTest &Compiled,
    const std::function<bool(const Candidate &)> &Fn) {
  const auto &Reads = Compiled.reads();
  const auto &Writes = Compiled.candidateWrites();
  std::vector<Relation> Cos = Compiled.allCoherenceOrders();

  std::vector<size_t> Pick(Reads.size(), 0);
  std::vector<EventId> Choice(Reads.size());
  while (true) {
    for (size_t I = 0; I < Reads.size(); ++I)
      Choice[I] = Writes[I][Pick[I]];
    for (const Relation &Co : Cos) {
      Candidate Cand = Compiled.concretize(Choice, Co);
      if (!Fn(Cand))
        return;
    }
    // Odometer step over rf choices.
    size_t I = 0;
    for (; I < Reads.size(); ++I) {
      if (++Pick[I] < Writes[I].size())
        break;
      Pick[I] = 0;
    }
    if (I == Reads.size())
      break;
  }
}

const SimulationResult *
MultiSimulationResult::forModel(const std::string &Name) const {
  for (const SimulationResult &R : PerModel)
    if (R.ModelName == Name)
      return &R;
  return nullptr;
}

MultiModelChecker::MultiModelChecker(const CompiledTest &Compiled,
                                     std::vector<const Model *> ModelsIn)
    : Final(Compiled.test().Final), Models(std::move(ModelsIn)) {
  Result.TestName = Compiled.test().Name;
  Result.PerModel.resize(Models.size());
  for (size_t I = 0; I < Models.size(); ++I) {
    Result.PerModel[I].TestName = Result.TestName;
    Result.PerModel[I].ModelName = Models[I]->name();
  }
  Metrics = obs::metricsEnabled();
  if (Metrics)
    AxiomKills.assign(Models.size(), {});
}

void MultiModelChecker::feed(const Candidate &Cand) {
  ++Result.CandidatesTotal;
  if (!Cand.Consistent)
    return;
  ++Result.CandidatesConsistent;

  // The candidate is final by now: let every model check share one
  // computation of the derived relations (fr, po-loc, com, ...). The
  // outcome's key cache is already on (enabled by concretize), so the
  // outcome-set inserts below compare memoized keys instead of
  // rebuilding the key string per comparison.
  Cand.Exe.enableDerivedCache();

  // Model-independent work, once per candidate.
  Result.ConsistentOutcomes.insert(Cand.Out);
  const bool SatisfiesFinal = Cand.Out.satisfies(Final);

  for (size_t I = 0; I < Models.size(); ++I) {
    // check() evaluates all four axioms without short-circuiting either
    // way, so reading the full verdict (for the per-axiom kill tallies)
    // costs the same as the boolean allows().
    const Verdict V = Models[I]->check(Cand.Exe);
    if (!V.Allowed) {
      if (Metrics)
        for (Axiom A : V.Violated)
          ++AxiomKills[I][static_cast<size_t>(A)];
      continue;
    }
    SimulationResult &R = Result.PerModel[I];
    ++R.CandidatesAllowed;
    R.AllowedOutcomes.insert(Cand.Out);
    if (SatisfiesFinal)
      R.ConditionReachable = true;
  }
}

MultiSimulationResult MultiModelChecker::take() {
  // Mirror the shared fields so each PerModel entry stands alone.
  for (SimulationResult &R : Result.PerModel) {
    R.CandidatesTotal = Result.CandidatesTotal;
    R.CandidatesConsistent = Result.CandidatesConsistent;
    R.ConsistentOutcomes = Result.ConsistentOutcomes;
  }

  // Flush the local tallies into the metrics registry, once per test.
  if (Metrics) {
    obs::counter("judge.tests").add(1);
    obs::counter("judge.candidates_total").add(Result.CandidatesTotal);
    obs::counter("judge.candidates_consistent")
        .add(Result.CandidatesConsistent);
    obs::counter("judge.candidates_inconsistent")
        .add(Result.CandidatesTotal - Result.CandidatesConsistent);
    for (size_t I = 0; I < Models.size(); ++I) {
      const std::string ModelName = Models[I]->name();
      if (Result.PerModel[I].CandidatesAllowed)
        obs::counter("judge.allowed." + ModelName)
            .add(Result.PerModel[I].CandidatesAllowed);
      for (size_t A = 0; A < AxiomKills[I].size(); ++A)
        if (AxiomKills[I][A])
          obs::counter("judge.kill." + ModelName + "." +
                       axiomName(static_cast<Axiom>(A)))
              .add(AxiomKills[I][A]);
    }
  }
  return std::move(Result);
}

MultiSimulationResult
cats::simulateAll(const CompiledTest &Compiled,
                  const std::vector<const Model *> &Models) {
  MultiModelChecker Checker(Compiled, Models);
  forEachCandidate(Compiled, [&](const Candidate &Cand) {
    Checker.feed(Cand);
    return true;
  });
  return Checker.take();
}

MultiSimulationResult
cats::simulateAll(const LitmusTest &Test,
                  const std::vector<const Model *> &Models) {
  auto Compiled = CompiledTest::compile(Test);
  assert(Compiled && "litmus test failed to compile");
  return simulateAll(*Compiled, Models);
}

SimulationResult cats::simulate(const CompiledTest &Compiled,
                                const Model &M) {
  return simulateAll(Compiled, {&M}).PerModel.front();
}

SimulationResult cats::simulate(const LitmusTest &Test, const Model &M) {
  auto Compiled = CompiledTest::compile(Test);
  assert(Compiled && "litmus test failed to compile");
  return simulate(*Compiled, M);
}

bool cats::allowedBy(const LitmusTest &Test, const Model &M) {
  return simulate(Test, M).ConditionReachable;
}

std::string cats::herdStyleReport(const SimulationResult &Result,
                                  const Condition &Final) {
  std::string Out = "Test " + Result.TestName + " " +
                    (Result.ConditionReachable ? "Allowed" : "Forbidden") +
                    "\n";
  Out += "States " + std::to_string(Result.AllowedOutcomes.size()) + "\n";
  for (const Outcome &State : Result.AllowedOutcomes) {
    // The key is already "t:rN=v;loc=v;..." — reformat with spaces.
    std::string Line = State.key();
    std::string Spaced;
    for (char C : Line) {
      Spaced += C;
      if (C == ';')
        Spaced += ' ';
    }
    Out += Spaced + "\n";
  }
  Out += Result.ConditionReachable ? "Ok\n" : "No\n";
  Out += "Condition " + Final.toString() + "\n";
  Out += "Model " + Result.ModelName + "\n";
  return Out;
}
