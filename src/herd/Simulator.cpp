//===- Simulator.cpp - Single-event axiomatic simulation (herd) -----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "herd/Simulator.h"

#include "herd/Enumerator.h"
#include "model/Registry.h"
#include "model/SimpleModels.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <map>

using namespace cats;

namespace {

/// Per-model counter handles, cached per thread. Registry storage is
/// node-based so Counter addresses are stable for the process lifetime;
/// the cache skips rebuilding the "judge.allowed.<model>" and
/// "judge.kill.<model>.<axiom>" names and taking the registry mutex per
/// model per test — a measurable slice of the metrics overhead on
/// many-small-test campaigns.
struct ModelCounters {
  obs::Counter *Allowed = nullptr;
  std::array<obs::Counter *, 4> Kill{};
};

const ModelCounters &modelCounters(const Model &M) {
  thread_local std::map<const Model *, ModelCounters> Cache;
  auto [It, New] = Cache.try_emplace(&M);
  if (New) {
    const std::string Name = M.name();
    It->second.Allowed = &obs::counter("judge.allowed." + Name);
    for (size_t A = 0; A < It->second.Kill.size(); ++A)
      It->second.Kill[A] = &obs::counter("judge.kill." + Name + "." +
                                         axiomName(static_cast<Axiom>(A)));
  }
  return It->second;
}

} // namespace

const char *cats::judgeBackendName(JudgeBackend B) {
  switch (B) {
  case JudgeBackend::Naive:
    return "naive";
  case JudgeBackend::Pruned:
    return "pruned";
  case JudgeBackend::Bmc:
    return "bmc";
  }
  return "?";
}

bool cats::parseJudgeBackend(const std::string &Name, JudgeBackend &Out) {
  if (Name == "naive")
    Out = JudgeBackend::Naive;
  else if (Name == "pruned")
    Out = JudgeBackend::Pruned;
  else if (Name == "bmc")
    Out = JudgeBackend::Bmc;
  else
    return false;
  return true;
}

void cats::forEachCandidate(
    const CompiledTest &Compiled,
    const std::function<bool(const Candidate &)> &Fn) {
  const auto &Reads = Compiled.reads();
  const auto &Writes = Compiled.candidateWrites();
  std::vector<Relation> Cos = Compiled.allCoherenceOrders();

  std::vector<size_t> Pick(Reads.size(), 0);
  std::vector<EventId> Choice(Reads.size());
  while (true) {
    for (size_t I = 0; I < Reads.size(); ++I)
      Choice[I] = Writes[I][Pick[I]];
    for (const Relation &Co : Cos) {
      Candidate Cand = Compiled.concretize(Choice, Co);
      if (!Fn(Cand))
        return;
    }
    // Odometer step over rf choices.
    size_t I = 0;
    for (; I < Reads.size(); ++I) {
      if (++Pick[I] < Writes[I].size())
        break;
      Pick[I] = 0;
    }
    if (I == Reads.size())
      break;
  }
}

const SimulationResult *
MultiSimulationResult::forModel(const std::string &Name) const {
  for (const SimulationResult &R : PerModel)
    if (R.ModelName == Name)
      return &R;
  return nullptr;
}

MultiModelChecker::MultiModelChecker(const CompiledTest &Compiled,
                                     std::vector<const Model *> ModelsIn)
    : Final(Compiled.test().Final), Models(std::move(ModelsIn)) {
  Result.TestName = Compiled.test().Name;
  Result.PerModel.resize(Models.size());
  for (size_t I = 0; I < Models.size(); ++I) {
    Result.PerModel[I].TestName = Result.TestName;
    Result.PerModel[I].ModelName = Models[I]->name();
  }
  Metrics = obs::metricsEnabled();
  if (Metrics)
    AxiomKills.assign(Models.size(), {});

  // Resolve the model-strength forest against this model set: an edge
  // only exists when the designated stronger registry instance is itself
  // part of the set. EvalOrder lists ancestors before descendants (the
  // forest is a few levels deep, so a relaxation loop settles fast).
  StrongerIdx.assign(Models.size(), -1);
  for (size_t I = 0; I < Models.size(); ++I) {
    const Model *Stronger = strongerModel(*Models[I]);
    for (size_t J = 0; Stronger && J < Models.size(); ++J)
      if (Models[J] == Stronger && J != I) {
        StrongerIdx[I] = static_cast<int>(J);
        break;
      }
  }
  std::vector<bool> Placed(Models.size(), false);
  while (EvalOrder.size() < Models.size())
    for (size_t I = 0; I < Models.size(); ++I) {
      if (Placed[I])
        continue;
      int P = StrongerIdx[I];
      if (P < 0 || Placed[static_cast<size_t>(P)]) {
        EvalOrder.push_back(I);
        Placed[I] = true;
      }
    }

  // Lemma 4.1 fast paths: the registry SC and TSO instances are provably
  // equivalent to their one-shot reference formulations (tests/model.cpp
  // re-checks the equivalence on every catalogue candidate), so the
  // boolean-only judge() path can answer them with one or two acyclicity
  // checks instead of the four-axiom evaluation.
  RefPath.assign(Models.size(), RefFormulation::None);
  // The registry lookups allocate (Model::name() is by-value); resolve
  // them once, not per checker.
  static const Model *const ScInstance = modelByName("SC");
  static const Model *const TsoInstance = modelByName("TSO");
  for (size_t I = 0; I < Models.size(); ++I) {
    if (Models[I] == ScInstance)
      RefPath[I] = RefFormulation::Sc;
    else if (Models[I] == TsoInstance)
      RefPath[I] = RefFormulation::Tso;
  }
}

void MultiModelChecker::feed(const Candidate &Cand) {
  ++Result.CandidatesTotal;
  if (!Cand.Consistent)
    return;
  ++Result.CandidatesConsistent;

  // The candidate is final by now: let every model check share one
  // computation of the derived relations (fr, po-loc, com, ...). The
  // outcome's key cache is already on (enabled by concretize), so the
  // outcome-set inserts below compare memoized keys instead of
  // rebuilding the key string per comparison.
  Cand.Exe.enableDerivedCache();

  // Model-independent work, once per candidate.
  Result.ConsistentOutcomes.insert(Cand.Out);
  const bool SatisfiesFinal = Cand.Out.satisfies(Final);

  for (size_t I = 0; I < Models.size(); ++I) {
    // check() evaluates all four axioms without short-circuiting either
    // way, so reading the full verdict (for the per-axiom kill tallies)
    // costs the same as the boolean allows().
    const Verdict V = Models[I]->check(Cand.Exe);
    if (WitnessMode && SatisfiesFinal)
      captureWitness(I, V, Cand.Exe, Cand.Out);
    if (!V.Allowed) {
      if (Metrics)
        for (Axiom A : V.Violated)
          ++AxiomKills[I][static_cast<size_t>(A)];
      continue;
    }
    SimulationResult &R = Result.PerModel[I];
    ++R.CandidatesAllowed;
    R.AllowedOutcomes.insert(Cand.Out);
    if (SatisfiesFinal)
      R.ConditionReachable = true;
  }
}

void MultiModelChecker::enableWitnessCapture() {
  if (WitnessMode)
    return;
  WitnessMode = true;
  Slots.resize(Models.size());
}

void MultiModelChecker::captureWitness(size_t ModelIdx, const Verdict &V,
                                       const Execution &Exe,
                                       const Outcome &O) {
  WitnessSlot &S = Slots[ModelIdx];
  if (V.Allowed) {
    if (S.HaveAllow)
      return;
    S.HaveAllow = true;
    S.AllowExe = Exe;
    S.AllowOut = O;
    return;
  }
  if (S.HaveKill || V.Violated.empty())
    return;
  S.HaveKill = true;
  S.KillExe = Exe;
  S.KillOut = O;
  S.KillAxiom = V.Violated.front();
}

void MultiModelChecker::recordPruneCut(const Execution &Partial,
                                       std::vector<LabeledEdge> Cycle) {
  if (!WitnessMode || HaveCut)
    return;
  HaveCut = true;
  CutExe = Partial;
  CutCycle = std::move(Cycle);
}

const std::vector<Verdict> &MultiModelChecker::judge(const Execution &Exe) {
  return judgeImpl(Exe, nullptr);
}

const std::vector<Verdict> &MultiModelChecker::judge(const Execution &Exe,
                                                     bool ScAllowed) {
  return judgeImpl(Exe, &ScAllowed);
}

const std::vector<Verdict> &
MultiModelChecker::judgeImpl(const Execution &Exe, const bool *ScHint) {
  JudgeBuf.resize(Models.size());
  // Stronger-first with the implication shortcut: once a model's
  // designated stronger ancestor allowed the execution, monotonicity of
  // the axioms in (ppo, fences, prop) forces this model to allow it too,
  // so the checks are skipped outright. On executions SC allows this
  // collapses nine model checks into one.
  //
  // The shortcut is exact for the judge.kill.* tallies too: skipped
  // models are allowed, and kill counters only record violations. A
  // reference-formulation answer carries its own attribution: for SC
  // and TSO the reference acyclicity check *is* the PROPAGATION axiom
  // with co | prop spelled out (SC: co|po|rf|fr = po|com, Lemma 4.1;
  // TSO: ppo|mfence|co|rfe|fr), so "forbidden" means propagation is
  // violated and the kill books there without a full check. Other
  // axioms possibly violated on the same candidate are not re-derived
  // on this path — the catalogue documents judge.kill as "at least".
  // Witness capture needs the failing axiom of every model, so it runs
  // the full check for each: a shortcut-skipped model has an empty
  // Violated list and a reference-formulation answer only attributes
  // PROPAGATION, neither of which can seed an axiom-cycle witness.
  if (WitnessMode) {
    for (size_t I = 0; I < Models.size(); ++I)
      JudgeBuf[I] = Models[I]->check(Exe);
    PendingJudged = &Exe;
    return JudgeBuf;
  }
  for (size_t I : EvalOrder) {
    int P = StrongerIdx[I];
    if (P >= 0 && JudgeBuf[static_cast<size_t>(P)].Allowed) {
      JudgeBuf[I] = Verdict();
      continue;
    }
    if (RefPath[I] != RefFormulation::None) {
      const bool RefAllowed =
          RefPath[I] == RefFormulation::Sc
              ? (ScHint ? *ScHint : isScReference(Exe))
              : isTsoReference(Exe);
      if (RefAllowed) {
        JudgeBuf[I] = Verdict();
        continue;
      }
      JudgeBuf[I] = Verdict();
      JudgeBuf[I].Allowed = false;
      if (Metrics)
        JudgeBuf[I].Violated.push_back(Axiom::Propagation);
      continue;
    }
    JudgeBuf[I] = Models[I]->check(Exe);
  }
  return JudgeBuf;
}

void MultiModelChecker::accountConsistentOutcome(const Outcome &O) {
  auto [It, New] = OutcomeNotes.try_emplace(O.key());
  OutcomeNote &Note = It->second;
  if (New)
    Note.Satisfies = O.satisfies(Final);
  // A note may predate the set insert: accountImage creates notes for
  // orbit-image outcomes, and a canonical leaf can be judged before the
  // image rf's own closed-form pass reaches this call. Membership is
  // therefore tracked in the note, not inferred from its existence —
  // otherwise the image outcome never lands in ConsistentOutcomes and
  // take()'s mask materialization silently skips it.
  if (Note.InConsistentSet)
    return;
  Note.InConsistentSet = true;
  Result.ConsistentOutcomes.insert(O);
}

void MultiModelChecker::accountImage(const std::vector<Verdict> &Verdicts,
                                     const Outcome &O) {
  // Every image outcome has been through accountConsistentOutcome (the
  // closed-form pass covers each consistent rf's whole outcome cross
  // product), so the note is normally a hit; the emplace covers direct
  // callers outside the enumerator.
  auto [It, New] = OutcomeNotes.try_emplace(O.key());
  OutcomeNote &Note = It->second;
  if (New)
    Note.Satisfies = O.satisfies(Final);
  // The first image after a judge() is the identity one, whose outcome
  // belongs to the judged execution itself — the only image the witness
  // snapshot is valid for (later images permute threads).
  if (WitnessMode && PendingJudged) {
    const Execution &Judged = *PendingJudged;
    PendingJudged = nullptr;
    if (Note.Satisfies)
      for (size_t I = 0; I < Models.size(); ++I)
        captureWitness(I, Verdicts[I], Judged, O);
  }
  // The per-model AllowedOutcomes sets and ConditionReachable flags are
  // not touched here: they are reconstructed in take() from the per-
  // outcome allowed masks, so the per-leaf cost is counter bumps and one
  // mask OR instead of up to numModels() ordered-set inserts.
  unsigned long long Mask = 0;
  for (size_t I = 0; I < Models.size(); ++I) {
    const Verdict &V = Verdicts[I];
    if (!V.Allowed) {
      if (Metrics)
        for (Axiom A : V.Violated)
          ++AxiomKills[I][static_cast<size_t>(A)];
      continue;
    }
    ++Result.PerModel[I].CandidatesAllowed;
    if (I < 64) {
      Mask |= 1ull << I;
    } else {
      // Past the mask width the deferral has nowhere to record the
      // model, so those entries materialize immediately (the insert
      // dedups repeats on its own).
      Result.PerModel[I].AllowedOutcomes.insert(O);
      if (Note.Satisfies)
        Result.PerModel[I].ConditionReachable = true;
    }
  }
  Note.AllowedMask |= Mask;
}

void MultiModelChecker::accountPrunedMass(unsigned long long N) {
  if (!Metrics || !N)
    return;
  for (size_t I = 0; I < Models.size(); ++I)
    AxiomKills[I][static_cast<size_t>(Axiom::ScPerLocation)] += N;
}

MultiSimulationResult MultiModelChecker::take() {
  // Materialize the per-model allowed sets and reachability flags the
  // incremental path deferred (feed() fills them directly and leaves the
  // notes' masks empty, so this loop is a no-op after a naive run).
  // ConsistentOutcomes iterates in key order and every note key is a
  // consistent outcome's key, so each model's inserts arrive ascending
  // and the end() hint keeps them search-free.
  for (const Outcome &O : Result.ConsistentOutcomes) {
    auto It = OutcomeNotes.find(O.key());
    if (It == OutcomeNotes.end() || !It->second.AllowedMask)
      continue;
    const OutcomeNote &Note = It->second;
    for (size_t I = 0; I < Models.size() && I < 64; ++I) {
      if (!(Note.AllowedMask >> I & 1))
        continue;
      SimulationResult &R = Result.PerModel[I];
      R.AllowedOutcomes.insert(R.AllowedOutcomes.end(), O);
      if (Note.Satisfies)
        R.ConditionReachable = true;
    }
  }

  // Mirror the shared counts so each PerModel entry stands alone. The
  // ConsistentOutcomes set is only copied in the single-model case (the
  // simulate() facade returns that lone entry detached from the multi
  // result); with many models the copies dominate take() itself, so
  // multi-model consumers read the shared set on MultiSimulationResult.
  for (SimulationResult &R : Result.PerModel) {
    R.CandidatesTotal = Result.CandidatesTotal;
    R.CandidatesConsistent = Result.CandidatesConsistent;
  }
  if (Result.PerModel.size() == 1)
    Result.PerModel.front().ConsistentOutcomes = Result.ConsistentOutcomes;

  // Assemble the captured witness slots now that every verdict is final.
  // A slot can be empty when the backend never materialized evidence for
  // the verdict (pruned subtree, bmc outcome hit); completeWitnesses
  // fills those gaps on demand.
  if (WitnessMode) {
    for (size_t I = 0; I < Models.size(); ++I) {
      const SimulationResult &R = Result.PerModel[I];
      const WitnessSlot &S = Slots[I];
      if (R.ConditionReachable && S.HaveAllow)
        Result.Witnesses.push_back(obs::makeAllowedWitness(
            Result.TestName, R.ModelName, S.AllowExe, S.AllowOut));
      else if (!R.ConditionReachable && S.HaveKill)
        Result.Witnesses.push_back(obs::makeKillWitness(
            Result.TestName, *Models[I], S.KillAxiom, S.KillExe, S.KillOut));
    }
    if (HaveCut)
      Result.Witnesses.push_back(obs::makePruneCutWitness(
          Result.TestName, CutExe, std::move(CutCycle)));
  }

  // Flush the local tallies into the metrics registry, once per test.
  // The fixed-name handles resolve once per process (registry addresses
  // are stable), the per-model ones come from the thread-local cache.
  if (Metrics) {
    static obs::Counter &CTests = obs::counter("judge.tests");
    static obs::Counter &CTotal = obs::counter("judge.candidates_total");
    static obs::Counter &CConsistent =
        obs::counter("judge.candidates_consistent");
    static obs::Counter &CInconsistent =
        obs::counter("judge.candidates_inconsistent");
    CTests.add(1);
    CTotal.add(Result.CandidatesTotal);
    CConsistent.add(Result.CandidatesConsistent);
    CInconsistent.add(Result.CandidatesTotal - Result.CandidatesConsistent);
    for (size_t I = 0; I < Models.size(); ++I) {
      const ModelCounters &MC = modelCounters(*Models[I]);
      if (Result.PerModel[I].CandidatesAllowed)
        MC.Allowed->add(Result.PerModel[I].CandidatesAllowed);
      for (size_t A = 0; A < AxiomKills[I].size(); ++A)
        if (AxiomKills[I][A])
          MC.Kill[A]->add(AxiomKills[I][A]);
    }
    if (HaveStats) {
      static obs::Counter &CPartial = obs::counter("judge.pruned.partial");
      static obs::Counter &CPruned = obs::counter("judge.pruned.candidates");
      static obs::Counter &CJudged = obs::counter("judge.candidates_judged");
      static obs::Counter &CReused = obs::counter("judge.symmetry.reused");
      static obs::Counter &CBmcHits = obs::counter("judge.bmc.outcome_hits");
      CPartial.add(Stats.PartialCuts);
      CPruned.add(Stats.PrunedCandidates);
      CJudged.add(Stats.JudgedCandidates);
      CReused.add(Stats.SymmetryReused);
      if (Stats.BmcOutcomeHits)
        CBmcHits.add(Stats.BmcOutcomeHits);
    }
  }
  return std::move(Result);
}

MultiSimulationResult
cats::simulateAll(const CompiledTest &Compiled,
                  const std::vector<const Model *> &Models,
                  const SimulateOptions &Opts) {
  MultiModelChecker Checker(Compiled, Models);
  if (Opts.Witness)
    Checker.enableWitnessCapture();
  if (Opts.Backend == JudgeBackend::Naive) {
    forEachCandidate(Compiled, [&](const Candidate &Cand) {
      Checker.feed(Cand);
      return true;
    });
  } else {
    Checker.setEnumerationStats(
        enumerateIncremental(Compiled, Checker,
                             /*SkipKnownOutcomes=*/Opts.Backend ==
                                 JudgeBackend::Bmc));
  }
  MultiSimulationResult Result = Checker.take();
  if (Opts.Witness) {
    completeWitnesses(Compiled, Models, Result);
    // Deterministic order regardless of which pass produced an entry:
    // request order of the models, the prune-cut witness last.
    auto Rank = [&](const obs::Witness &W) {
      for (size_t I = 0; I < Models.size(); ++I)
        if (W.Model == Models[I]->name())
          return I;
      return Models.size();
    };
    std::stable_sort(
        Result.Witnesses.begin(), Result.Witnesses.end(),
        [&](const obs::Witness &A, const obs::Witness &B) {
          return Rank(A) < Rank(B);
        });
  }
  return Result;
}

MultiSimulationResult
cats::simulateAll(const CompiledTest &Compiled,
                  const std::vector<const Model *> &Models,
                  JudgeBackend Backend) {
  SimulateOptions Opts;
  Opts.Backend = Backend;
  return simulateAll(Compiled, Models, Opts);
}

void cats::completeWitnesses(const CompiledTest &Compiled,
                             const std::vector<const Model *> &Models,
                             MultiSimulationResult &Result) {
  const Condition &Final = Compiled.test().Final;

  // Which models still need evidence (the capture may have covered them).
  std::vector<bool> Have(Models.size(), false);
  for (const obs::Witness &W : Result.Witnesses)
    for (size_t I = 0; I < Models.size(); ++I)
      if (W.Model == Models[I]->name())
        Have[I] = true;
  size_t Missing = 0;
  for (bool H : Have)
    Missing += !H;
  if (!Missing)
    return;

  // When no consistent outcome satisfies the condition the forbidden
  // verdicts are condition-level facts, not axiom kills: emit the marker
  // without walking a single candidate.
  bool Satisfiable = false;
  for (const Outcome &O : Result.ConsistentOutcomes)
    if (O.satisfies(Final)) {
      Satisfiable = true;
      break;
    }
  if (!Satisfiable) {
    for (size_t I = 0; I < Models.size(); ++I)
      if (!Have[I])
        Result.Witnesses.push_back(obs::makeUnreachableWitness(
            Result.TestName, Models[I]->name()));
    return;
  }

  // Naive walk over the satisfying consistent candidates, stopping as
  // soon as every missing model has its witness. An Allow verdict is
  // final on the first allowed candidate; a Forbid verdict is killed on
  // *every* satisfying candidate, so the first one seen serves.
  forEachCandidate(Compiled, [&](const Candidate &Cand) {
    if (!Cand.Consistent || !Cand.Out.satisfies(Final))
      return true;
    Cand.Exe.enableDerivedCache();
    for (size_t I = 0; I < Models.size(); ++I) {
      if (Have[I])
        continue;
      const Verdict V = Models[I]->check(Cand.Exe);
      const bool Reachable = Result.PerModel[I].ConditionReachable;
      if (Reachable && V.Allowed) {
        Result.Witnesses.push_back(obs::makeAllowedWitness(
            Result.TestName, Models[I]->name(), Cand.Exe, Cand.Out));
      } else if (!Reachable && !V.Allowed && !V.Violated.empty()) {
        Result.Witnesses.push_back(obs::makeKillWitness(
            Result.TestName, *Models[I], V.Violated.front(), Cand.Exe,
            Cand.Out));
      } else {
        continue;
      }
      Have[I] = true;
      --Missing;
    }
    return Missing != 0;
  });
}

MultiSimulationResult
cats::simulateAll(const CompiledTest &Compiled,
                  const std::vector<const Model *> &Models) {
  return simulateAll(Compiled, Models, JudgeBackend::Pruned);
}

MultiSimulationResult
cats::simulateAll(const LitmusTest &Test,
                  const std::vector<const Model *> &Models,
                  JudgeBackend Backend) {
  auto Compiled = CompiledTest::compile(Test);
  assert(Compiled && "litmus test failed to compile");
  return simulateAll(*Compiled, Models, Backend);
}

MultiSimulationResult
cats::simulateAll(const LitmusTest &Test,
                  const std::vector<const Model *> &Models) {
  return simulateAll(Test, Models, JudgeBackend::Pruned);
}

SimulationResult cats::simulate(const CompiledTest &Compiled,
                                const Model &M) {
  return simulateAll(Compiled, {&M}).PerModel.front();
}

SimulationResult cats::simulate(const LitmusTest &Test, const Model &M) {
  auto Compiled = CompiledTest::compile(Test);
  assert(Compiled && "litmus test failed to compile");
  return simulate(*Compiled, M);
}

bool cats::allowedBy(const LitmusTest &Test, const Model &M) {
  return simulate(Test, M).ConditionReachable;
}

std::string cats::herdStyleReport(const SimulationResult &Result,
                                  const Condition &Final) {
  std::string Out = "Test " + Result.TestName + " " +
                    (Result.ConditionReachable ? "Allowed" : "Forbidden") +
                    "\n";
  Out += "States " + std::to_string(Result.AllowedOutcomes.size()) + "\n";
  for (const Outcome &State : Result.AllowedOutcomes) {
    // The key is already "t:rN=v;loc=v;..." — reformat with spaces.
    std::string Line = State.key();
    std::string Spaced;
    for (char C : Line) {
      Spaced += C;
      if (C == ';')
        Spaced += ' ';
    }
    Out += Spaced + "\n";
  }
  Out += Result.ConditionReachable ? "Ok\n" : "No\n";
  Out += "Condition " + Final.toString() + "\n";
  Out += "Model " + Result.ModelName + "\n";
  return Out;
}
