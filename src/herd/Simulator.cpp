//===- Simulator.cpp - Single-event axiomatic simulation (herd) -----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "herd/Simulator.h"

using namespace cats;

void cats::forEachCandidate(
    const CompiledTest &Compiled,
    const std::function<bool(const Candidate &)> &Fn) {
  const auto &Reads = Compiled.reads();
  const auto &Writes = Compiled.candidateWrites();
  std::vector<Relation> Cos = Compiled.allCoherenceOrders();

  std::vector<size_t> Pick(Reads.size(), 0);
  std::vector<EventId> Choice(Reads.size());
  while (true) {
    for (size_t I = 0; I < Reads.size(); ++I)
      Choice[I] = Writes[I][Pick[I]];
    for (const Relation &Co : Cos) {
      Candidate Cand = Compiled.concretize(Choice, Co);
      if (!Fn(Cand))
        return;
    }
    // Odometer step over rf choices.
    size_t I = 0;
    for (; I < Reads.size(); ++I) {
      if (++Pick[I] < Writes[I].size())
        break;
      Pick[I] = 0;
    }
    if (I == Reads.size())
      break;
  }
}

SimulationResult cats::simulate(const CompiledTest &Compiled,
                                const Model &M) {
  SimulationResult Result;
  Result.TestName = Compiled.test().Name;
  Result.ModelName = M.name();
  const Condition &Final = Compiled.test().Final;

  forEachCandidate(Compiled, [&](const Candidate &Cand) {
    ++Result.CandidatesTotal;
    if (!Cand.Consistent)
      return true;
    ++Result.CandidatesConsistent;
    Result.ConsistentOutcomes.insert(Cand.Out);
    if (!M.allows(Cand.Exe))
      return true;
    ++Result.CandidatesAllowed;
    Result.AllowedOutcomes.insert(Cand.Out);
    if (Cand.Out.satisfies(Final))
      Result.ConditionReachable = true;
    return true;
  });
  return Result;
}

SimulationResult cats::simulate(const LitmusTest &Test, const Model &M) {
  auto Compiled = CompiledTest::compile(Test);
  assert(Compiled && "litmus test failed to compile");
  return simulate(*Compiled, M);
}

bool cats::allowedBy(const LitmusTest &Test, const Model &M) {
  return simulate(Test, M).ConditionReachable;
}

std::string cats::herdStyleReport(const SimulationResult &Result,
                                  const Condition &Final) {
  std::string Out = "Test " + Result.TestName + " " +
                    (Result.ConditionReachable ? "Allowed" : "Forbidden") +
                    "\n";
  Out += "States " + std::to_string(Result.AllowedOutcomes.size()) + "\n";
  for (const Outcome &State : Result.AllowedOutcomes) {
    // The key is already "t:rN=v;loc=v;..." — reformat with spaces.
    std::string Line = State.key();
    std::string Spaced;
    for (char C : Line) {
      Spaced += C;
      if (C == ';')
        Spaced += ' ';
    }
    Out += Spaced + "\n";
  }
  Out += Result.ConditionReachable ? "Ok\n" : "No\n";
  Out += "Condition " + Final.toString() + "\n";
  Out += "Model " + Result.ModelName + "\n";
  return Out;
}
