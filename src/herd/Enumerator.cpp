//===- Enumerator.cpp - Incremental pruned candidate search ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
//
// Search order (docs/enumeration.md): rf choices in the same odometer
// order as forEachCandidate; under each rf, one coherence permutation per
// multi-write location, committed location by location. The partial graph
//
//   po-loc\llh | rf | co(committed) | fr(forced)
//
// is re-checked for acyclicity after every commitment: a cycle there is a
// cycle of po-loc | com in every completion, i.e. an SC PER LOCATION
// violation that every model of the framework rejects (the llh weakening
// is subtracted up front so the prune stays sound for RMO / ARM llh).
//
// The model-independent tallies never walk the co space at all: value
// consistency and final register files depend only on rf (the data-flow
// fixpoint never reads co), the per-rf candidate count is a closed form,
// and the consistent-outcome set is the cross product of per-location
// final-value sets (any program write is co-last in some permutation).
//
//===----------------------------------------------------------------------===//

#include "herd/Enumerator.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>

using namespace cats;

namespace {

/// Coherence structure of one location.
struct CoLocation {
  Location Loc = -1;
  EventId InitWrite = 0;
  /// Program writes in ascending event order (the base permutation).
  std::vector<EventId> ProgramWrites;
};

/// One element of the thread-symmetry group: a permutation of identical
/// threads, expanded to events (thread t's k-th event maps to thread
/// sigma(t)'s k-th event; initial writes are fixed).
struct SymElem {
  std::vector<ThreadId> ThreadMap;
  std::vector<EventId> EventMap;
  /// ReadIndexMap[i]: position in reads() of EventMap[reads()[i]].
  std::vector<size_t> ReadIndexMap;
  bool Identity = true;
};

/// The full group (product of symmetric groups over each class of
/// identical threads), expanded up to MaxGroupSize elements; larger
/// groups disable the reduction rather than truncate it.
struct SymmetryGroup {
  std::vector<SymElem> Elems;
  bool active() const { return Elems.size() > 1; }
};

constexpr unsigned long long MaxGroupSize = 64;

SymmetryGroup buildGroup(const CompiledTest &Compiled) {
  SymmetryGroup G;
  const LitmusTest &Test = Compiled.test();
  const Execution &Skel = Compiled.skeleton();
  const unsigned NumThreads = Test.numThreads();

  // Classes of literally identical thread code.
  std::vector<std::vector<ThreadId>> Classes;
  for (ThreadId T = 0; T < static_cast<ThreadId>(NumThreads); ++T) {
    bool Placed = false;
    for (std::vector<ThreadId> &C : Classes)
      if (Test.Threads[C.front()] == Test.Threads[T]) {
        C.push_back(T);
        Placed = true;
        break;
      }
    if (!Placed)
      Classes.push_back({T});
  }

  unsigned long long Size = 1;
  for (const std::vector<ThreadId> &C : Classes)
    for (size_t I = 2; I <= C.size() && Size <= MaxGroupSize; ++I)
      Size *= I;
  if (Size <= 1 || Size > MaxGroupSize)
    return G;

  // All permutations per class, then their cross product.
  std::vector<std::vector<std::vector<ThreadId>>> ClassPerms;
  for (const std::vector<ThreadId> &C : Classes) {
    std::vector<ThreadId> P = C;
    std::vector<std::vector<ThreadId>> Perms;
    do
      Perms.push_back(P);
    while (std::next_permutation(P.begin(), P.end()));
    ClassPerms.push_back(std::move(Perms));
  }

  std::vector<std::vector<EventId>> ThreadEvents(NumThreads);
  for (ThreadId T = 0; T < static_cast<ThreadId>(NumThreads); ++T)
    ThreadEvents[T] = Skel.threadEvents(T);
  const auto &Reads = Compiled.reads();
  std::vector<size_t> PosOfRead(Skel.numEvents(), 0);
  for (size_t I = 0; I < Reads.size(); ++I)
    PosOfRead[Reads[I]] = I;

  std::vector<size_t> Pick(Classes.size(), 0);
  while (true) {
    SymElem S;
    S.ThreadMap.resize(NumThreads);
    for (size_t C = 0; C < Classes.size(); ++C)
      for (size_t K = 0; K < Classes[C].size(); ++K)
        S.ThreadMap[Classes[C][K]] = ClassPerms[C][Pick[C]][K];
    S.Identity = true;
    for (ThreadId T = 0; T < static_cast<ThreadId>(NumThreads); ++T)
      if (S.ThreadMap[T] != T)
        S.Identity = false;
    S.EventMap.resize(Skel.numEvents());
    for (EventId E = 0; E < Skel.numEvents(); ++E)
      S.EventMap[E] = E;
    for (ThreadId T = 0; T < static_cast<ThreadId>(NumThreads); ++T)
      for (size_t K = 0; K < ThreadEvents[T].size(); ++K)
        S.EventMap[ThreadEvents[T][K]] = ThreadEvents[S.ThreadMap[T]][K];
    S.ReadIndexMap.resize(Reads.size());
    for (size_t I = 0; I < Reads.size(); ++I)
      S.ReadIndexMap[I] = PosOfRead[S.EventMap[Reads[I]]];
    G.Elems.push_back(std::move(S));

    size_t C = 0;
    for (; C < Classes.size(); ++C) {
      if (++Pick[C] < ClassPerms[C].size())
        break;
      Pick[C] = 0;
    }
    if (C == Classes.size())
      break;
  }
  // The all-sorted starting permutations put the identity first.
  return G;
}

} // namespace

EnumerationStats cats::enumerateIncremental(const CompiledTest &Compiled,
                                            MultiModelChecker &Checker,
                                            bool SkipKnownOutcomes) {
  EnumerationStats Stats;
  const Execution &Skel = Compiled.skeleton();
  const auto &Reads = Compiled.reads();
  const auto &CandWrites = Compiled.candidateWrites();
  const unsigned N = Skel.numEvents();

  // Per-location write structure, mirroring allCoherenceOrders().
  std::vector<CoLocation> AllLocs;
  std::vector<size_t> BranchIdx; // locations with >= 2 program writes
  unsigned long long CoCount = 1;
  for (Location Loc = 0;
       Loc < static_cast<Location>(Skel.LocationNames.size()); ++Loc) {
    CoLocation L;
    L.Loc = Loc;
    for (EventId W : Skel.writesTo(Loc)) {
      if (Skel.event(W).IsInit)
        L.InitWrite = W;
      else
        L.ProgramWrites.push_back(W);
    }
    std::sort(L.ProgramWrites.begin(), L.ProgramWrites.end());
    for (size_t I = 2; I <= L.ProgramWrites.size(); ++I)
      CoCount *= I;
    if (L.ProgramWrites.size() >= 2)
      BranchIdx.push_back(AllLocs.size());
    AllLocs.push_back(std::move(L));
  }

  // po-loc weakened by the load-load-hazard rule, the strongest same-
  // location order every model agrees on. Without any such pair com alone
  // is acyclic (all its edges stay within one location, where co is a
  // total order), so the graph bookkeeping is skipped entirely.
  Relation PoLocLlh(N);
  for (auto [From, To] : Skel.Po.pairs())
    if (Skel.event(From).Loc == Skel.event(To).Loc &&
        !(Skel.event(From).isRead() && Skel.event(To).isRead()))
      PoLocLlh.set(From, To);
  const bool CanPrune = !PoLocLlh.empty();

  // Initial writes co-precede every program write of their location in
  // every coherence order.
  Relation InitCo(N);
  for (const CoLocation &L : AllLocs)
    for (EventId W : L.ProgramWrites)
      InitCo.set(L.InitWrite, W);

  // One scratch execution, mutated in place and re-judged per canonical
  // leaf; the memo tiers keep whatever stays valid across the mutation.
  Execution Scratch = Skel;
  Scratch.enableDerivedCache();

  SymmetryGroup G = buildGroup(Compiled);
  if (Checker.numModels() > 64)
    SkipKnownOutcomes = false; // the outcome memo's mask is 64 bits wide
  const unsigned long long FullMask =
      Checker.numModels() >= 64 ? ~0ull
                                : ((1ull << Checker.numModels()) - 1);
  std::map<std::string, unsigned long long> OutcomeMask;
  unsigned long long Survivors = 0;

  std::vector<std::vector<EventId>> Perm(BranchIdx.size());
  std::vector<std::vector<std::pair<EventId, EventId>>> ReadsOfBranchLoc(
      BranchIdx.size());
  // Reused across leaves: the orbit-image outcomes of the current leaf
  // (storage plus the pointer view handed to the checker).
  std::vector<Outcome> ImageStorage;
  std::vector<const Outcome *> ImageOutcomes;
  // Reused across rf choices: per-location final-value sets of the
  // closed-form outcome pass.
  std::vector<std::vector<Value>> ValueSets(AllLocs.size());
  std::vector<size_t> VPick(AllLocs.size());

  // Witness mode: turns the first partial-graph cycle that justified a
  // prune cut into labeled provenance edges. Membership order mirrors how
  // the graph was assembled — rf, then po-loc (llh-weakened), then co
  // (init-co or an ordered write pair), leaving fr for the read-to-write
  // edges the init/branch completion added.
  auto recordCut = [&](const Relation &Graph, const Relation &CoSoFar) {
    std::vector<EventId> Loop = Graph.minimalCycle();
    if (Loop.size() < 2)
      return;
    std::vector<LabeledEdge> Cycle;
    for (size_t I = 0; I + 1 < Loop.size(); ++I) {
      LabeledEdge E;
      E.From = Loop[I];
      E.To = Loop[I + 1];
      if (Scratch.Rf.test(E.From, E.To))
        E.Label = "rf";
      else if (PoLocLlh.test(E.From, E.To))
        E.Label = "po-loc";
      else if (CoSoFar.test(E.From, E.To) ||
               (Skel.event(E.From).isWrite() && Skel.event(E.To).isWrite()))
        E.Label = "co";
      else
        E.Label = "fr";
      Cycle.push_back(E);
    }
    Scratch.Co = CoSoFar;
    Scratch.invalidateDerived(MemoTier::PerCo);
    Checker.recordPruneCut(Scratch, std::move(Cycle));
  };

  auto visitRf = [&](const std::vector<EventId> &RfVec) {
    Checker.accountTotal(CoCount);
    CompiledTest::RfConcretization C = Compiled.concretizeRf(RfVec);
    if (!C.Consistent)
      return;
    Checker.accountConsistent(CoCount);

    // Consistent outcomes, closed form: registers are rf-determined and
    // any program write is co-last in some permutation, so the memory
    // side is the cross product of per-location final-value sets.
    //
    // When the cross product is a single outcome (every location's final
    // value is forced — the norm on critical-cycle corpora), every leaf
    // under this rf shares it, and the leaves below reuse the object
    // instead of rebuilding outcome and key per coherence permutation.
    std::optional<Outcome> SoleOutcome;
    {
      for (size_t LI = 0; LI < AllLocs.size(); ++LI) {
        const CoLocation &L = AllLocs[LI];
        std::vector<Value> &Vals = ValueSets[LI];
        Vals.clear();
        if (L.ProgramWrites.empty()) {
          Vals.push_back(C.EventVals[L.InitWrite]);
        } else {
          for (EventId W : L.ProgramWrites)
            Vals.push_back(C.EventVals[W]);
          std::sort(Vals.begin(), Vals.end());
          Vals.erase(std::unique(Vals.begin(), Vals.end()), Vals.end());
        }
      }
      SoleOutcome.reset();
      size_t OutcomeCount = 0;
      VPick.assign(AllLocs.size(), 0);
      while (true) {
        Outcome O;
        O.Regs = C.FinalRegs;
        for (size_t L = 0; L < AllLocs.size(); ++L)
          O.Memory[Skel.LocationNames[AllLocs[L].Loc]] =
              ValueSets[L][VPick[L]];
        O.enableKeyCache();
        Checker.accountConsistentOutcome(O);
        if (++OutcomeCount == 1)
          SoleOutcome = std::move(O);
        else
          SoleOutcome.reset();
        size_t L = 0;
        for (; L < AllLocs.size(); ++L) {
          if (++VPick[L] < ValueSets[L].size())
            break;
          VPick[L] = 0;
        }
        if (L == AllLocs.size())
          break;
      }
    }

    // Symmetry: only the lexicographically least rf image of each orbit
    // is searched further; its judged leaves replay over the whole orbit.
    std::vector<const SymElem *> Stab;
    if (G.active()) {
      std::vector<EventId> Img(RfVec.size());
      for (size_t E = 1; E < G.Elems.size(); ++E) {
        const SymElem &S = G.Elems[E];
        for (size_t I = 0; I < RfVec.size(); ++I)
          Img[S.ReadIndexMap[I]] = S.EventMap[RfVec[I]];
        if (Img < RfVec)
          return; // not canonical: a smaller image will be searched
        if (Img == RfVec)
          Stab.push_back(&S);
      }
    }

    Scratch.Rf = Relation(N);
    for (size_t I = 0; I < Reads.size(); ++I)
      Scratch.Rf.set(RfVec[I], Reads[I]);
    for (EventId E = 0; E < N; ++E)
      Scratch.event(E).Val = C.EventVals[E];
    Scratch.invalidateDerived(MemoTier::PerRf);

    // Full SC graph at the rf level: po | rf plus the co/fr edges shared
    // by every completion (init co-first; a read of the initial write
    // fr-precedes every program write of its location). Each leaf below
    // extends it with the branch locations' co and fr edges, which makes
    // it exactly po | com — so the Lemma 4.1 SC verdict (acyclic(po |
    // com)) falls out of one DFS on a graph the enumerator already
    // maintains, with no com/fr rebuild per leaf.
    Relation ScBase = Skel.Po | Scratch.Rf | InitCo;
    for (size_t I = 0; I < Reads.size(); ++I) {
      if (!Skel.event(RfVec[I]).IsInit)
        continue;
      const CoLocation &L = AllLocs[Skel.event(Reads[I]).Loc];
      for (EventId W : L.ProgramWrites)
        ScBase.set(Reads[I], W);
    }
    // Cyclic already at the rf level: every leaf is SC-forbidden (their
    // graphs are supergraphs), no per-leaf DFS needed either way.
    const bool ScBaseAcyclic = ScBase.isAcyclic();

    // Partial prune graph at the rf level: as above but with po weakened
    // to po-loc-llh, the strongest same-location order every model
    // agrees on.
    Relation Base(N);
    if (CanPrune) {
      Base = PoLocLlh | Scratch.Rf | InitCo;
      for (size_t I = 0; I < Reads.size(); ++I) {
        if (!Skel.event(RfVec[I]).IsInit)
          continue;
        const CoLocation &L = AllLocs[Skel.event(Reads[I]).Loc];
        for (EventId W : L.ProgramWrites)
          Base.set(Reads[I], W);
      }
      // Base's edges are a subset of ScBase's (po-loc-llh is po), so its
      // own DFS only runs when ScBase's cycle leaves the question open.
      if (!ScBaseAcyclic && !Base.isAcyclic()) {
        ++Stats.PartialCuts;
        if (Checker.witnessCapture() && !Checker.havePruneCutWitness())
          recordCut(Base, InitCo);
        return; // every completion violates SC PER LOCATION
      }
    }

    // Reads taking their value from a program write of a multi-write
    // location: their fr edges depend on where that write lands in co.
    for (auto &Rs : ReadsOfBranchLoc)
      Rs.clear();
    for (size_t I = 0; I < Reads.size(); ++I) {
      const Event &W = Skel.event(RfVec[I]);
      if (W.IsInit)
        continue;
      for (size_t D = 0; D < BranchIdx.size(); ++D)
        if (AllLocs[BranchIdx[D]].Loc == W.Loc)
          ReadsOfBranchLoc[D].emplace_back(Reads[I], RfVec[I]);
    }

    // Outcome template for this rf; multi-write entries are overwritten
    // per leaf with the co-last value. Unused (and skipped) when the rf
    // has a sole outcome.
    std::map<std::string, Value> MemTemplate;
    if (!SoleOutcome)
      for (const CoLocation &L : AllLocs)
        MemTemplate[Skel.LocationNames[L.Loc]] =
            C.EventVals[L.ProgramWrites.empty() ? L.InitWrite
                                                : L.ProgramWrites.front()];

    auto leaf = [&]() {
      // Canonical leaf within the rf stabilizer: the lexicographically
      // least concatenated coherence sequence of its orbit slice.
      for (const SymElem *S : Stab) {
        int Cmp = 0;
        for (size_t D = 0; D < Perm.size() && Cmp == 0; ++D)
          for (size_t K = 0; K < Perm[D].size(); ++K) {
            EventId A = S->EventMap[Perm[D][K]], B = Perm[D][K];
            if (A != B) {
              Cmp = A < B ? -1 : 1;
              break;
            }
          }
        if (Cmp < 0)
          return; // not canonical
      }

      // The leaf's outcome: the rf-level sole outcome when the final
      // memory state is forced, otherwise built from the template with
      // each multi-write location's co-last value.
      Outcome Built;
      if (!SoleOutcome) {
        Built.Regs = C.FinalRegs;
        Built.Memory = MemTemplate;
        for (size_t D = 0; D < Perm.size(); ++D)
          Built.Memory[Skel.LocationNames[AllLocs[BranchIdx[D]].Loc]] =
              C.EventVals[Perm[D].back()];
        Built.enableKeyCache();
      }
      const Outcome &O = SoleOutcome ? *SoleOutcome : Built;

      // Distinct orbit images of this assignment. Two group elements
      // yielding the same serialized (rf, co) denote the same candidate
      // (they differ by an assignment stabilizer), so images deduplicate
      // by that key; each distinct image is exactly one naive candidate.
      std::vector<const SymElem *> ImageElems;
      if (G.active()) {
        std::vector<std::vector<EventId>> SeenKeys;
        std::vector<EventId> Key;
        for (const SymElem &S : G.Elems) {
          Key.assign(RfVec.size(), 0);
          for (size_t I = 0; I < RfVec.size(); ++I)
            Key[S.ReadIndexMap[I]] = S.EventMap[RfVec[I]];
          for (size_t D = 0; D < Perm.size(); ++D)
            for (EventId W : Perm[D])
              Key.push_back(S.EventMap[W]);
          if (std::find(SeenKeys.begin(), SeenKeys.end(), Key) ==
              SeenKeys.end()) {
            SeenKeys.push_back(Key);
            ImageElems.push_back(&S);
          }
        }
      } else {
        ImageElems.push_back(nullptr); // identity only
      }

      // Image outcomes: thread sigma(t) of the image runs exactly thread
      // t's data-flow, so registers permute and memory is unchanged. The
      // identity image aliases O instead of copying it — on trivial
      // orbits (the common case) no outcome is materialized at all.
      ImageStorage.clear();
      ImageStorage.reserve(ImageElems.size());
      ImageOutcomes.clear();
      ImageOutcomes.reserve(ImageElems.size());
      for (const SymElem *S : ImageElems) {
        if (!S || S->Identity) {
          ImageOutcomes.push_back(&O);
          continue;
        }
        Outcome IO;
        IO.Regs.resize(O.Regs.size());
        for (size_t T = 0; T < O.Regs.size(); ++T)
          IO.Regs[S->ThreadMap[T]] = O.Regs[T];
        IO.Memory = O.Memory;
        IO.enableKeyCache();
        ImageStorage.push_back(std::move(IO));
        ImageOutcomes.push_back(&ImageStorage.back());
      }

      Survivors += ImageOutcomes.size();

      if (SkipKnownOutcomes) {
        bool AllKnown = true;
        for (const Outcome *IO : ImageOutcomes) {
          auto It = OutcomeMask.find(IO->key());
          if (It == OutcomeMask.end() || It->second != FullMask) {
            AllKnown = false;
            break;
          }
        }
        if (AllKnown) {
          Stats.BmcOutcomeHits += ImageOutcomes.size();
          return; // outcome already proven allowed under every model
        }
      }

      Relation Co = InitCo;
      for (size_t D = 0; D < Perm.size(); ++D)
        for (size_t I = 0; I < Perm[D].size(); ++I)
          for (size_t J = I + 1; J < Perm[D].size(); ++J)
            Co.set(Perm[D][I], Perm[D][J]);
      Scratch.Co = std::move(Co);
      Scratch.invalidateDerived(MemoTier::PerCo);

      // The leaf's SC verdict from the incremental graph: ScBase plus
      // the branch locations' co edges and the fr edges of reads whose
      // source write is no longer co-last. Leaves without branch
      // locations are exactly ScBase, already decided.
      bool ScAllowed = ScBaseAcyclic;
      if (ScAllowed && !BranchIdx.empty()) {
        Relation ScG = ScBase;
        for (size_t D = 0; D < Perm.size(); ++D) {
          for (size_t I = 0; I < Perm[D].size(); ++I)
            for (size_t J = I + 1; J < Perm[D].size(); ++J)
              ScG.set(Perm[D][I], Perm[D][J]);
          for (auto [R, W] : ReadsOfBranchLoc[D]) {
            size_t Pos = static_cast<size_t>(
                std::find(Perm[D].begin(), Perm[D].end(), W) -
                Perm[D].begin());
            for (size_t J = Pos + 1; J < Perm[D].size(); ++J)
              ScG.set(R, Perm[D][J]);
          }
        }
        ScAllowed = ScG.isAcyclic();
      }

      const std::vector<Verdict> &Vs = Checker.judge(Scratch, ScAllowed);
      ++Stats.JudgedCandidates;
      Stats.SymmetryReused += ImageOutcomes.size() - 1;

      unsigned long long Mask = 0;
      for (size_t M = 0; M < Vs.size() && M < 64; ++M)
        if (Vs[M].Allowed)
          Mask |= 1ull << M;
      for (const Outcome *IO : ImageOutcomes) {
        Checker.accountImage(Vs, *IO);
        if (SkipKnownOutcomes)
          OutcomeMask[IO->key()] |= Mask;
      }
    };

    // Commit one coherence permutation per multi-write location, pruning
    // the subtree as soon as the partial graph acquires a cycle.
    std::function<void(size_t, const Relation &)> walk =
        [&](size_t D, const Relation &Graph) {
          if (D == BranchIdx.size()) {
            leaf();
            return;
          }
          const CoLocation &L = AllLocs[BranchIdx[D]];
          std::vector<EventId> P = L.ProgramWrites;
          do {
            if (!CanPrune) {
              Perm[D] = P;
              walk(D + 1, Graph);
              continue;
            }
            Relation Next = Graph;
            for (size_t I = 0; I < P.size(); ++I)
              for (size_t J = I + 1; J < P.size(); ++J)
                Next.set(P[I], P[J]);
            for (auto [R, W] : ReadsOfBranchLoc[D]) {
              size_t WI = 0;
              while (P[WI] != W)
                ++WI;
              for (size_t J = WI + 1; J < P.size(); ++J)
                Next.set(R, P[J]);
            }
            if (!Next.isAcyclic()) {
              ++Stats.PartialCuts;
              if (Checker.witnessCapture() && !Checker.havePruneCutWitness()) {
                Relation CoSoFar = InitCo;
                for (size_t Dim = 0; Dim < D; ++Dim)
                  for (size_t I = 0; I < Perm[Dim].size(); ++I)
                    for (size_t J = I + 1; J < Perm[Dim].size(); ++J)
                      CoSoFar.set(Perm[Dim][I], Perm[Dim][J]);
                for (size_t I = 0; I < P.size(); ++I)
                  for (size_t J = I + 1; J < P.size(); ++J)
                    CoSoFar.set(P[I], P[J]);
                recordCut(Next, CoSoFar);
              }
              continue; // the whole subtree is SC-PER-LOCATION dead
            }
            Perm[D] = P;
            walk(D + 1, Next);
          } while (std::next_permutation(P.begin(), P.end()));
        };
    walk(0, Base);
  };

  // rf odometer, the same order as forEachCandidate.
  std::vector<size_t> Pick(Reads.size(), 0);
  std::vector<EventId> RfVec(Reads.size());
  while (true) {
    for (size_t I = 0; I < Reads.size(); ++I)
      RfVec[I] = CandWrites[I][Pick[I]];
    visitRf(RfVec);
    size_t I = 0;
    for (; I < Reads.size(); ++I) {
      if (++Pick[I] < CandWrites[I].size())
        break;
      Pick[I] = 0;
    }
    if (I == Reads.size())
      break;
  }

  // Everything consistent but never surviving to a judged orbit was cut
  // on a po-loc | com cycle: rejected by SC PER LOCATION under every
  // model, with no outcome or allowance to account.
  Stats.PrunedCandidates = Checker.consistentCount() - Survivors;
  Checker.accountPrunedMass(Stats.PrunedCandidates);
  return Stats;
}
