//===- MultiEvent.h - Multi-event axiomatic checking ----------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-event axiomatic checker in the style of Mador-Haim et al.
/// [CAV 2012], the comparison point of Table IX. Where the single-event
/// model uses one event per store, the multi-event style uses one
/// propagation subevent per (store, thread) pair, mimicking the transitions
/// of the operational model.
///
/// We reproduce the *cost structure* of that choice faithfully while
/// keeping the verdict provably identical to the single-event model: every
/// relation the axioms consult is blown up onto the expanded universe
/// (every base event is replaced by its copies, every edge by the complete
/// bipartite edges between copies), and the axiom algorithms (closures,
/// acyclicity, composition) run on the expanded graph. A cycle exists in
/// the blow-up iff one exists in the base, so verdicts agree; the closures,
/// however, pay the (1 + threads)-fold event multiplication the paper
/// blames for the CAV'12 model's ~10x simulation slowdown (Sec. 8.3).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_HERD_MULTIEVENT_H
#define CATS_HERD_MULTIEVENT_H

#include "event/Execution.h"
#include "model/Model.h"

namespace cats {

/// Result of a multi-event check.
struct MultiEventResult {
  bool Allowed = true;
  /// Size of the expanded event universe.
  unsigned ExpandedEvents = 0;
};

/// Checks \p Exe against \p M with multi-event cost. The verdict equals
/// M.allows(Exe) by construction; the work does not.
MultiEventResult multiEventCheck(const Execution &Exe, const Model &M);

} // namespace cats

#endif // CATS_HERD_MULTIEVENT_H
