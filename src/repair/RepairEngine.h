//===- RepairEngine.h - Search-based fence synthesis ----------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repair subsystem's search engine (Sec. 7, and the "Don't sit on the
/// fence" program-transformation direction): given litmus tests whose
/// final condition is reachable on a weak model, find every *minimal* set
/// of fence/dependency insertions restoring the goal —
///
///  * ForbidFinal: the exists-clause outcome becomes unobservable;
///  * ScEquivalence: the model's allowed outcomes equal the native SC
///    model's.
///
/// The insertion lattice (one action per program-order gap, drawn from
/// repair/Mutation.h) is explored level by level. Both goals are monotone
/// — inserting more or stronger mechanisms only shrinks the allowed set —
/// so the repairing sets are upward-closed and the search prunes every
/// candidate that dominates an already-repairing set. What remains of a
/// level is judged in one batch: all mutants of all tests of the campaign
/// go through a single SweepEngine pass per round, each mutant's models
/// (target, plus SC for the equivalence goal) checked in one shared
/// candidate enumeration by MultiModelChecker, instead of one simulate()
/// per mutant and model.
///
/// Reported minimal repairs form the antichain frontier: removing any
/// single insertion re-allows the goal outcome, and no reported set is a
/// weakening-dominated variant of another. The cheapest repair under the
/// per-architecture fence-cost table (HwConfig::FenceCosts) comes first.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_REPAIR_REPAIRENGINE_H
#define CATS_REPAIR_REPAIRENGINE_H

#include "model/Model.h"
#include "repair/Mutation.h"
#include "sweep/Json.h"

#include <functional>
#include <string>
#include <vector>

namespace cats {

/// What a repair must restore.
enum class RepairGoal : uint8_t {
  ForbidFinal,   ///< Forbid the test's exists-clause outcome.
  ScEquivalence, ///< Allowed outcomes equal the native SC model's.
};

/// "forbid" / "sc".
const char *repairGoalName(RepairGoal G);

/// Engine configuration.
struct RepairOptions {
  RepairGoal Goal = RepairGoal::ForbidFinal;
  /// Model to repair against; nullptr selects each test's architecture
  /// default (model/Registry's modelFor).
  const Model *TargetModel = nullptr;
  /// SC reference for RepairGoal::ScEquivalence; nullptr selects the
  /// registry's native SC model.
  const Model *ScReference = nullptr;
  /// Sweep workers for the batched judging; 0 = hardware concurrency.
  unsigned Jobs = 0;
  /// Cap on insertions per repair set; 0 = the test's site count.
  unsigned MaxInsertions = 0;
  /// Safety cap on mutants evaluated per test; exceeding it truncates the
  /// search (TestRepairResult::Truncated).
  unsigned long long MaxMutantsPerTest = 200000;
  /// Add the write-write-only fences (eieio, dmb.st) to the vocabulary.
  bool IncludeWWOnlyFences = false;
  /// Bench-only: judge each mutant with one simulate() per model instead
  /// of the batched shared-enumeration pass.
  bool LegacyEvaluation = false;
  /// Progress hook: called after every lock-step round with the rounds
  /// completed, mutants judged so far, and the tests still searching
  /// (cats_repair --progress feeds its reporter from this).
  std::function<void(unsigned Rounds, unsigned long long Mutants,
                     size_t ActiveTests)>
      OnRound;
};

/// One minimal repairing set.
struct RepairSet {
  std::vector<RepairAction> Actions;
  /// Sum of the per-action costs on the test's architecture.
  unsigned Cost = 0;

  /// "{P0:lwsync, P1:addr}".
  std::string name() const { return repairSetName(Actions); }
};

/// The repair outcome for one test.
struct TestRepairResult {
  std::string TestName;
  std::string ModelName;
  RepairGoal Goal = RepairGoal::ForbidFinal;
  /// Non-empty when the test failed to validate/compile.
  std::string Error;
  /// The unmutated test already meets the goal.
  bool AlreadyMeetsGoal = false;
  /// Some insertion set meets the goal.
  bool Repairable = false;
  /// The search hit MaxMutantsPerTest before exhausting the lattice.
  bool Truncated = false;
  /// All minimal repairing sets, cheapest first (ties by name).
  std::vector<RepairSet> MinimalRepairs;
  /// Program-order gaps available for insertion.
  unsigned Sites = 0;
  /// Mutants judged for this test.
  unsigned long long MutantsEvaluated = 0;

  /// The first (cheapest) minimal repair; nullptr when none.
  const RepairSet *cheapest() const {
    return MinimalRepairs.empty() ? nullptr : &MinimalRepairs.front();
  }

  /// "AlreadyOk" / "Repairable" / "Unrepairable" / "Error".
  const char *verdict() const;
};

/// A completed repair campaign, in submission order.
struct RepairReport {
  std::vector<TestRepairResult> Tests;
  /// Wall time of the whole campaign, seconds.
  double WallSeconds = 0;
  /// Sweep workers used for the batched judging.
  unsigned Jobs = 1;
  /// Mutants judged across the campaign.
  unsigned long long MutantsEvaluated = 0;
  /// Batched judging rounds (lattice levels crossed, campaign-wide).
  unsigned Rounds = 0;

  /// True when no test carries an error.
  bool allOk() const;
};

/// Runs repair campaigns: the whole battery advances through the insertion
/// lattice in lock-step, one batched sweep per level.
class RepairEngine {
public:
  explicit RepairEngine(RepairOptions Opts = {});

  const RepairOptions &options() const { return Opts; }

  /// Repairs every test; one SweepEngine pass per lattice level judges the
  /// surviving mutants of all tests together.
  RepairReport run(const std::vector<LitmusTest> &Tests) const;

  /// Convenience: a one-test campaign.
  TestRepairResult repairOne(const LitmusTest &Test) const;

private:
  RepairOptions Opts;
};

/// Serializes \p Report to the cats-repair-report/1 JSON schema
/// (docs/repair.md documents every field). Deterministic rendering: two
/// runs of the same campaign differ only in the wall-time field.
JsonValue repairReportToJson(const RepairReport &Report);

/// Renders one test's repairs in the herd-flavoured text format:
///
///   Test mp Repairable
///   Model Power goal forbid
///   Minimal repairs 2
///   {P0:lwsync, P1:addr} cost 4
///   {P0:lwsync, P1:ctrl+cfence} cost 5
///   Cheapest {P0:lwsync, P1:addr}
std::string repairTextReport(const TestRepairResult &Result);

} // namespace cats

#endif // CATS_REPAIR_REPAIRENGINE_H
