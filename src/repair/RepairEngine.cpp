//===- RepairEngine.cpp - Search-based fence synthesis --------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "repair/RepairEngine.h"

#include "herd/Simulator.h"
#include "litmus/Compiler.h"
#include "model/Registry.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/StringUtils.h"
#include "sweep/SweepEngine.h"

#include <algorithm>
#include <chrono>
#include <map>

using namespace cats;

const char *cats::repairGoalName(RepairGoal G) {
  return G == RepairGoal::ForbidFinal ? "forbid" : "sc";
}

const char *TestRepairResult::verdict() const {
  if (!Error.empty())
    return "Error";
  if (AlreadyMeetsGoal)
    return "AlreadyOk";
  return Repairable ? "Repairable" : "Unrepairable";
}

bool RepairReport::allOk() const {
  for (const TestRepairResult &T : Tests)
    if (!T.Error.empty())
      return false;
  return true;
}

RepairEngine::RepairEngine(RepairOptions OptsIn) : Opts(std::move(OptsIn)) {}

namespace {

/// Verdict of judging one mutant.
struct JudgeOutcome {
  std::string Error;
  bool GoalMet = false;
};

/// The goal predicate over the per-model results of one mutant: entry 0 is
/// the target model, entry 1 (ScEquivalence only) the SC reference.
bool goalMet(RepairGoal Goal, const MultiSimulationResult &R) {
  if (Goal == RepairGoal::ForbidFinal)
    return !R.PerModel[0].ConditionReachable;
  return R.PerModel[0].AllowedOutcomes == R.PerModel[1].AllowedOutcomes;
}

/// Judges every mutant job: one batched SweepEngine pass (each mutant's
/// models checked against one shared candidate enumeration), or — for the
/// bench comparison — one simulate() per (mutant, model).
std::vector<JudgeOutcome> judge(const std::vector<SweepJob> &Jobs,
                                RepairGoal Goal, unsigned Workers,
                                bool Legacy) {
  std::vector<JudgeOutcome> Out(Jobs.size());
  if (!Legacy) {
    SweepEngine Engine(SweepOptions{Workers});
    SweepReport Report = Engine.run(Jobs);
    for (size_t I = 0; I < Jobs.size(); ++I) {
      if (!Report.Tests[I].Error.empty())
        Out[I].Error = Report.Tests[I].Error;
      else
        Out[I].GoalMet = goalMet(Goal, Report.Tests[I].Result);
    }
    return Out;
  }
  for (size_t I = 0; I < Jobs.size(); ++I) {
    std::string Invalid = Jobs[I].Test.validate();
    if (!Invalid.empty()) {
      Out[I].Error = Invalid;
      continue;
    }
    auto Compiled = CompiledTest::compile(Jobs[I].Test);
    if (!Compiled) {
      Out[I].Error = Compiled.message();
      continue;
    }
    MultiSimulationResult R;
    for (const Model *M : Jobs[I].Models)
      R.PerModel.push_back(simulate(*Compiled, *M));
    Out[I].GoalMet = goalMet(Goal, R);
  }
  return Out;
}

/// Per-test state of the lock-step lattice search.
struct SearchState {
  LitmusTest Test;
  std::vector<const Model *> Models;
  /// All candidate single insertions, grouped per site ordinal.
  std::vector<RepairAction> Actions;
  std::vector<std::vector<size_t>> ActionsPerSite;
  unsigned MaxK = 0;
  /// Candidate sets (action indices, site-ordered) awaiting judgement.
  std::vector<std::vector<size_t>> Pending;
  /// Sets that met the goal, in discovery order.
  std::vector<std::vector<size_t>> Repairing;
  unsigned Level = 0;
  bool Done = false;
  TestRepairResult Result;

  /// True when known repairing set \p R makes candidate \p S redundant:
  /// every action of R has a same-site, same-or-stronger action in S, so
  /// S repairs by monotonicity and cannot be minimal.
  bool dominates(const std::vector<size_t> &R,
                 const std::vector<size_t> &S) const {
    for (size_t RI : R) {
      bool Covered = false;
      for (size_t SI : S)
        Covered |= repairActionLeq(Actions[RI], Actions[SI]);
      if (!Covered)
        return false;
    }
    return true;
  }

  bool dominatedByRepairing(const std::vector<size_t> &S) const {
    for (const std::vector<size_t> &R : Repairing)
      if (dominates(R, S))
        return true;
    return false;
  }

  /// Generates the next level's candidate sets: every choice of Level
  /// sites (increasing ordinals) with one action each, minus the ones a
  /// known repairing set dominates. Generation stops as soon as Pending
  /// exceeds \p Budget, so a huge lattice level never materializes past
  /// the mutant cap (the caller detects the overshoot and truncates).
  void generateLevel(unsigned long long Budget) {
    Pending.clear();
    const size_t Sites = ActionsPerSite.size();
    if (Level > MaxK || Level > Sites)
      return;
    std::vector<size_t> Set;
    // Recursive enumeration, site-lexicographic for determinism.
    auto Recurse = [&](auto &&Self, size_t Depth, size_t FirstSite) -> void {
      if (Pending.size() > Budget)
        return;
      if (Depth == Level) {
        if (!dominatedByRepairing(Set))
          Pending.push_back(Set);
        return;
      }
      for (size_t Site = FirstSite; Site < Sites; ++Site)
        for (size_t AI : ActionsPerSite[Site]) {
          Set.push_back(AI);
          Self(Self, Depth + 1, Site + 1);
          Set.pop_back();
        }
    };
    Recurse(Recurse, 0, 0);
  }

  std::vector<RepairAction> actionsOf(const std::vector<size_t> &Set) const {
    std::vector<RepairAction> List;
    List.reserve(Set.size());
    for (size_t I : Set)
      List.push_back(Actions[I]);
    return List;
  }
};

void initState(SearchState &State, const RepairOptions &Opts) {
  TestRepairResult &R = State.Result;
  R.TestName = State.Test.Name;
  R.Goal = Opts.Goal;

  const Model *Target = Opts.TargetModel
                            ? Opts.TargetModel
                            : &modelFor(State.Test.TargetArch);
  R.ModelName = Target->name();
  State.Models = {Target};
  if (Opts.Goal == RepairGoal::ScEquivalence) {
    const Model *Sc = Opts.ScReference ? Opts.ScReference : modelByName("SC");
    State.Models.push_back(Sc);
  }

  std::string Invalid = State.Test.validate();
  if (!Invalid.empty()) {
    R.Error = Invalid;
    State.Done = true;
    return;
  }

  State.Actions = enumerateActions(State.Test, Opts.IncludeWWOnlyFences);
  // Group per site ordinal (actions arrive site-major).
  for (const RepairAction &Act : State.Actions) {
    if (State.ActionsPerSite.empty() ||
        !State.Actions[State.ActionsPerSite.back().front()]
             .Site.sameAs(Act.Site))
      State.ActionsPerSite.emplace_back();
    State.ActionsPerSite.back().push_back(
        &Act - State.Actions.data());
  }
  R.Sites = static_cast<unsigned>(enumerateSites(State.Test).size());
  State.MaxK = Opts.MaxInsertions
                   ? std::min<unsigned>(
                         Opts.MaxInsertions,
                         static_cast<unsigned>(State.ActionsPerSite.size()))
                   : static_cast<unsigned>(State.ActionsPerSite.size());

  // Level 0: judge the unmutated test (the goal may already hold).
  State.Level = 0;
  State.Pending = {{}};
}

void finalizeState(SearchState &State, Arch A) {
  TestRepairResult &R = State.Result;
  if (!R.Error.empty() || R.AlreadyMeetsGoal)
    return;
  // The minimal repairs are the antichain: drop every repairing set some
  // other repairing set dominates.
  for (size_t I = 0; I < State.Repairing.size(); ++I) {
    bool Dominated = false;
    for (size_t J = 0; J < State.Repairing.size() && !Dominated; ++J)
      Dominated = I != J && State.dominates(State.Repairing[J],
                                            State.Repairing[I]);
    if (Dominated)
      continue;
    RepairSet Set;
    Set.Actions = State.actionsOf(State.Repairing[I]);
    for (const RepairAction &Act : Set.Actions)
      Set.Cost += repairActionCost(A, Act);
    R.MinimalRepairs.push_back(std::move(Set));
  }
  std::sort(R.MinimalRepairs.begin(), R.MinimalRepairs.end(),
            [](const RepairSet &L, const RepairSet &Rhs) {
              if (L.Cost != Rhs.Cost)
                return L.Cost < Rhs.Cost;
              return L.name() < Rhs.name();
            });
  R.Repairable = !R.MinimalRepairs.empty();
}

} // namespace

RepairReport RepairEngine::run(const std::vector<LitmusTest> &Tests) const {
  const auto Start = std::chrono::steady_clock::now();

  RepairReport Report;
  Report.Jobs = SweepEngine(SweepOptions{Opts.Jobs}).workerCount();

  std::vector<SearchState> States(Tests.size());
  for (size_t I = 0; I < Tests.size(); ++I) {
    States[I].Test = Tests[I];
    initState(States[I], Opts);
  }

  // Lock-step campaign: each round batches the pending mutants of every
  // unfinished test into one sweep.
  while (true) {
    std::vector<SweepJob> Jobs;
    std::vector<std::pair<size_t, size_t>> JobOrigin; // (state, pending idx)
    for (size_t SI = 0; SI < States.size(); ++SI) {
      SearchState &State = States[SI];
      if (State.Done)
        continue;
      for (size_t PI = 0; PI < State.Pending.size(); ++PI) {
        const std::vector<size_t> &Set = State.Pending[PI];
        if (Set.empty()) {
          Jobs.push_back(SweepJob{State.Test, State.Models});
        } else {
          auto Mutant = applyRepair(State.Test, State.actionsOf(Set));
          if (!Mutant) {
            State.Result.Error = Mutant.message();
            State.Done = true;
            break;
          }
          Jobs.push_back(SweepJob{Mutant.take(), State.Models});
        }
        JobOrigin.push_back({SI, PI});
      }
    }
    if (Jobs.empty())
      break;
    ++Report.Rounds;

    // One trace span per lattice level (the whole batched judging round).
    obs::Span RoundSpan(obs::traceEnabled()
                            ? strFormat("repair round %u (%zu mutants)",
                                        Report.Rounds, Jobs.size())
                            : std::string());
    if (obs::metricsEnabled()) {
      obs::counter("repair.rounds").add(1);
      obs::counter("repair.mutants").add(Jobs.size());
      obs::histogram("repair.round_mutants").record(Jobs.size());
    }

    std::vector<JudgeOutcome> Verdicts =
        judge(Jobs, Opts.Goal, Opts.Jobs, Opts.LegacyEvaluation);

    for (size_t J = 0; J < Jobs.size(); ++J) {
      auto [SI, PI] = JobOrigin[J];
      SearchState &State = States[SI];
      if (State.Done)
        continue; // A mutation error already sank this test.
      ++State.Result.MutantsEvaluated;
      if (!Verdicts[J].Error.empty()) {
        State.Result.Error = Verdicts[J].Error;
        State.Done = true;
        continue;
      }
      if (!Verdicts[J].GoalMet)
        continue;
      if (State.Pending[PI].empty()) {
        State.Result.AlreadyMeetsGoal = true;
        State.Result.Repairable = true;
        State.Done = true;
      } else {
        State.Repairing.push_back(State.Pending[PI]);
      }
    }

    // Advance every unfinished test to its next lattice level.
    for (SearchState &State : States) {
      if (State.Done)
        continue;
      ++State.Level;
      const unsigned long long Budget =
          Opts.MaxMutantsPerTest > State.Result.MutantsEvaluated
              ? Opts.MaxMutantsPerTest - State.Result.MutantsEvaluated
              : 0;
      State.generateLevel(Budget);
      if (State.Pending.empty()) {
        State.Done = true;
        continue;
      }
      if (State.Pending.size() > Budget) {
        State.Result.Truncated = true;
        State.Pending.clear();
        State.Done = true;
      }
    }

    if (Opts.OnRound) {
      unsigned long long Mutants = 0;
      size_t Active = 0;
      for (const SearchState &State : States) {
        Mutants += State.Result.MutantsEvaluated;
        Active += State.Done ? 0 : 1;
      }
      Opts.OnRound(Report.Rounds, Mutants, Active);
    }
  }

  Report.Tests.reserve(States.size());
  for (SearchState &State : States) {
    finalizeState(State, State.Test.TargetArch);
    Report.MutantsEvaluated += State.Result.MutantsEvaluated;
    Report.Tests.push_back(std::move(State.Result));
  }
  Report.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Report;
}

TestRepairResult RepairEngine::repairOne(const LitmusTest &Test) const {
  return run({Test}).Tests.front();
}

//===----------------------------------------------------------------------===//
// Reports (cats-repair-report/1 and herd-flavoured text)
//===----------------------------------------------------------------------===//

JsonValue cats::repairReportToJson(const RepairReport &Report) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-repair-report/1");
  Root.set("jobs", Report.Jobs);
  Root.set("rounds", Report.Rounds);
  Root.set("mutants_evaluated", Report.MutantsEvaluated);
  Root.set("wall_seconds", Report.WallSeconds);

  JsonValue Tests = JsonValue::array();
  for (const TestRepairResult &T : Report.Tests) {
    JsonValue Entry = JsonValue::object();
    Entry.set("name", T.TestName);
    Entry.set("model", T.ModelName);
    Entry.set("goal", repairGoalName(T.Goal));
    Entry.set("verdict", T.verdict());
    if (!T.Error.empty()) {
      Entry.set("error", T.Error);
      Tests.push(std::move(Entry));
      continue;
    }
    Entry.set("sites", T.Sites);
    Entry.set("mutants_evaluated", T.MutantsEvaluated);
    if (T.Truncated)
      Entry.set("truncated", true);

    JsonValue Repairs = JsonValue::array();
    for (const RepairSet &Set : T.MinimalRepairs) {
      JsonValue R = JsonValue::object();
      R.set("name", Set.name());
      R.set("cost", Set.Cost);
      JsonValue Actions = JsonValue::array();
      for (const RepairAction &Act : Set.Actions) {
        JsonValue A = JsonValue::object();
        A.set("site", Act.Site.toString());
        A.set("thread", Act.Site.Thread);
        A.set("gap", Act.Site.Gap);
        A.set("mech", repairMechName(Act.Mech));
        if (Act.Mech == RepairMech::Fence)
          A.set("fence", Act.FenceName);
        Actions.push(std::move(A));
      }
      R.set("actions", std::move(Actions));
      Repairs.push(std::move(R));
    }
    Entry.set("minimal_repairs", std::move(Repairs));
    if (const RepairSet *Best = T.cheapest())
      Entry.set("cheapest", Best->name());
    else
      Entry.set("cheapest", JsonValue());
    Tests.push(std::move(Entry));
  }
  Root.set("tests", std::move(Tests));
  return Root;
}

std::string cats::repairTextReport(const TestRepairResult &Result) {
  std::string Out =
      strFormat("Test %s %s\n", Result.TestName.c_str(), Result.verdict());
  if (!Result.Error.empty()) {
    Out += Result.Error + "\n";
    return Out;
  }
  Out += strFormat("Model %s goal %s\n", Result.ModelName.c_str(),
                   repairGoalName(Result.Goal));
  Out += strFormat("Sites %u\n", Result.Sites);
  if (Result.AlreadyMeetsGoal) {
    Out += "No insertion needed\n";
    return Out;
  }
  Out += strFormat("Minimal repairs %zu%s\n", Result.MinimalRepairs.size(),
                   Result.Truncated ? " (truncated)" : "");
  for (const RepairSet &Set : Result.MinimalRepairs)
    Out += strFormat("%s cost %u\n", Set.name().c_str(), Set.Cost);
  if (const RepairSet *Best = Result.cheapest())
    Out += strFormat("Cheapest %s\n", Best->name().c_str());
  return Out;
}
