//===- Mutation.h - Candidate fence/dependency insertions -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutation layer of the repair subsystem (Sec. 7): enumerate the
/// program-order gaps of a litmus test (consecutive memory accesses of one
/// thread) and the well-formed single insertions at each gap — every fence
/// of the architecture's repair vocabulary, plus addr/data/ctrl and
/// ctrl+cfence dependency strengthening where the access directions and
/// operands permit. Applying a set of insertions yields a mutated test that
/// validates and compiles like any hand-written one.
///
/// Candidate insertions carry a per-architecture cost (HwConfig::FenceCosts,
/// lwsync < sync style) and a semantic strength order: A <= B when whatever
/// A restores, B restores too. The search engine prunes the insertion
/// lattice with that order, so it must only relate actions whose ordering
/// edges are genuinely contained (e.g. a dependency from a read is weaker
/// than any fence covering read-sourced pairs at the same gap).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_REPAIR_MUTATION_H
#define CATS_REPAIR_MUTATION_H

#include "litmus/LitmusTest.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace cats {

/// A program-order gap: two consecutive memory accesses of one thread,
/// plus what the mutation layer needs to know about the instructions
/// already sitting between them (for dedup of equivalent placements).
struct RepairSite {
  ThreadId Thread = 0;
  /// Ordinal gap within the thread (0 = between 1st and 2nd access).
  unsigned Gap = 0;
  /// Instruction index of the earlier access.
  unsigned PrevAt = 0;
  /// Instruction index of the later access; insertions go right before it.
  unsigned InsertAt = 0;
  bool PrevIsRead = false;
  bool NextIsRead = false;
  /// Destination register of the earlier access when it is a load; -1 for
  /// stores (no dependency can start at a write).
  Register PrevLoadReg = -1;
  /// Whether the later access already carries an address dependency.
  bool NextHasAddrDep = false;
  /// Whether the later access is a store of an immediate (the only shape
  /// data-dependency strengthening rewrites).
  bool NextIsImmStore = false;
  /// Whether a compare-and-branch already sits in the gap.
  bool GapHasBranch = false;
  /// Fence names already sitting in the gap.
  std::vector<std::string> GapFences;

  bool sameAs(const RepairSite &Other) const {
    return Thread == Other.Thread && Gap == Other.Gap;
  }

  /// "P0" for a thread's first gap, "P0.1" for later ones.
  std::string toString() const;
};

/// Ordering mechanisms the mutation layer can insert at a site.
enum class RepairMech : uint8_t { Fence, Addr, Data, Ctrl, CtrlCfence };

/// Display name: "addr", "data", "ctrl", "ctrl+cfence" ("fence" for
/// RepairMech::Fence, whose display is the fence name itself).
const char *repairMechName(RepairMech M);

/// One candidate insertion: a mechanism at a site.
struct RepairAction {
  RepairSite Site;
  RepairMech Mech = RepairMech::Fence;
  /// For RepairMech::Fence.
  std::string FenceName;

  /// "P0:lwsync", "P1:addr", "P1:ctrl+cfence".
  std::string toString() const;
};

/// The program-order gaps of \p Test, thread-major then program order.
std::vector<RepairSite> enumerateSites(const LitmusTest &Test);

/// The canonical insertable fences of \p A, weakest first. Equivalent
/// fences collapse to one representative (dmb stands for dsb); standalone
/// control fences are excluded (they only order via ctrl+cfence).
/// \p IncludeWWOnly adds the write-write-only fences (eieio, dmb.st) —
/// off by default, matching the paper's restoration discussion which
/// works with sync/lwsync/dmb and dependencies.
std::vector<std::string> repairFenceVocabulary(Arch A,
                                               bool IncludeWWOnly = false);

/// Every well-formed single insertion for \p Test, deduped: fences already
/// implied by the gap's existing fences are skipped, as are dependencies
/// the program already carries. Deterministic order (site-major, then
/// fences weakest first, then addr/data/ctrl/ctrl+cfence).
std::vector<RepairAction> enumerateActions(const LitmusTest &Test,
                                           bool IncludeWWOnly = false);

/// Insertion cost of \p Act on \p A: dependencies cost 1 (ctrl+cfence adds
/// the control fence's cost), fences cost their HwConfig::FenceCosts entry
/// (repair defaults when the architecture has no HwConfig).
unsigned repairActionCost(Arch A, const RepairAction &Act);

/// Semantic strength order between two actions at the same site: true when
/// every ordering \p A restores, \p B restores too (so a repairing set
/// containing A makes the same set with B non-minimal). Comparable pairs:
/// equal actions; fences by pair-coverage and cumulativity (eieio <=
/// lwsync <= sync, dmb.st <= dmb); ctrl <= ctrl+cfence; and any dependency
/// (which starts at a read) <= a fence covering all read-sourced pairs.
/// Actions at different sites are never comparable.
bool repairActionLeq(const RepairAction &A, const RepairAction &B);

/// Applies \p Actions (at most one per site) to \p Test: inserts fences
/// and branches, threads addr/data dependencies through fresh registers
/// exactly as diy does, and re-validates. The mutant is named
/// "<test>+repair[<action>,...]".
Expected<LitmusTest> applyRepair(const LitmusTest &Test,
                                 const std::vector<RepairAction> &Actions);

/// "{P0:lwsync, P1:addr}".
std::string repairSetName(const std::vector<RepairAction> &Actions);

} // namespace cats

#endif // CATS_REPAIR_MUTATION_H
