//===- Mutation.cpp - Candidate fence/dependency insertions ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "repair/Mutation.h"

#include "event/Execution.h"
#include "model/HwModel.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>

using namespace cats;

std::string RepairSite::toString() const {
  if (Gap == 0)
    return strFormat("P%d", Thread);
  return strFormat("P%d.%u", Thread, Gap);
}

const char *cats::repairMechName(RepairMech M) {
  switch (M) {
  case RepairMech::Fence:
    return "fence";
  case RepairMech::Addr:
    return "addr";
  case RepairMech::Data:
    return "data";
  case RepairMech::Ctrl:
    return "ctrl";
  case RepairMech::CtrlCfence:
    return "ctrl+cfence";
  }
  return "?";
}

std::string RepairAction::toString() const {
  const std::string What =
      Mech == RepairMech::Fence ? FenceName : repairMechName(Mech);
  return Site.toString() + ":" + What;
}

std::string cats::repairSetName(const std::vector<RepairAction> &Actions) {
  std::vector<std::string> Parts;
  Parts.reserve(Actions.size());
  for (const RepairAction &A : Actions)
    Parts.push_back(A.toString());
  return "{" + joinStrings(Parts, ", ") + "}";
}

namespace {

bool isMemoryAccess(const Instruction &I) {
  return I.Op == Opcode::Load || I.Op == Opcode::Store;
}

/// Semantic strength of a fence: which program-order pairs it covers and
/// whether it takes part in the strong (full-fence) half of prop.
struct FenceStrength {
  enum Coverage : uint8_t { WWOnly, AllButWR, AllPairs };
  Coverage Cov = WWOnly;
  bool Full = false;
  bool Known = false;
};

FenceStrength fenceStrength(const std::string &Name) {
  using FS = FenceStrength;
  if (Name == fence::Sync || Name == fence::MFence || Name == fence::Dmb ||
      Name == fence::Dsb)
    return {FS::AllPairs, true, true};
  if (Name == fence::LwSync)
    return {FS::AllButWR, false, true};
  if (Name == fence::Eieio)
    return {FS::WWOnly, false, true};
  if (Name == fence::DmbSt || Name == fence::DsbSt)
    return {FS::WWOnly, true, true};
  return {};
}

/// True when fence \p A restores no more than fence \p B.
bool fenceLeq(const std::string &A, const std::string &B) {
  if (A == B)
    return true;
  const FenceStrength SA = fenceStrength(A), SB = fenceStrength(B);
  return SA.Known && SB.Known && SA.Cov <= SB.Cov && SA.Full <= SB.Full;
}

/// The HwConfig carrying an architecture's fence costs, when it has one.
const HwConfig *hwConfigFor(Arch A) {
  static const HwConfig Power = HwConfig::power();
  static const HwConfig Arm = HwConfig::arm();
  switch (A) {
  case Arch::Power:
    return &Power;
  case Arch::ARM:
    return &Arm;
  default:
    return nullptr;
  }
}

/// Fallback cost when the architecture has no HwConfig entry: full fences
/// are expensive, control fences cheap.
unsigned defaultFenceCost(const std::string &Name) {
  const FenceStrength S = fenceStrength(Name);
  if (!S.Known)
    return 1; // Control fences (isync/isb) and unknowns.
  return S.Full ? 6u : 3u;
}

unsigned fenceCostFor(Arch A, const std::string &Name) {
  if (const HwConfig *C = hwConfigFor(A))
    if (unsigned Cost = C->fenceCost(Name))
      return Cost;
  return defaultFenceCost(Name);
}

} // namespace

std::vector<RepairSite> cats::enumerateSites(const LitmusTest &Test) {
  std::vector<RepairSite> Sites;
  for (size_t T = 0; T < Test.Threads.size(); ++T) {
    const ThreadCode &Code = Test.Threads[T];
    int Prev = -1;
    unsigned Gap = 0;
    for (size_t I = 0; I < Code.size(); ++I) {
      if (!isMemoryAccess(Code[I]))
        continue;
      if (Prev >= 0) {
        RepairSite S;
        S.Thread = static_cast<ThreadId>(T);
        S.Gap = Gap++;
        S.PrevAt = static_cast<unsigned>(Prev);
        S.InsertAt = static_cast<unsigned>(I);
        S.PrevIsRead = Code[Prev].Op == Opcode::Load;
        S.NextIsRead = Code[I].Op == Opcode::Load;
        S.PrevLoadReg = S.PrevIsRead ? Code[Prev].Dst : -1;
        S.NextHasAddrDep = Code[I].AddrDep != -1;
        S.NextIsImmStore =
            Code[I].Op == Opcode::Store && Code[I].Src1.isImm();
        for (size_t J = Prev + 1; J < I; ++J) {
          if (Code[J].Op == Opcode::Fence)
            S.GapFences.push_back(Code[J].FenceName);
          if (Code[J].Op == Opcode::CmpBranch)
            S.GapHasBranch = true;
        }
        Sites.push_back(std::move(S));
      }
      Prev = static_cast<int>(I);
    }
  }
  return Sites;
}

std::vector<std::string> cats::repairFenceVocabulary(Arch A,
                                                     bool IncludeWWOnly) {
  // Weakest first; equivalent fences collapse to one representative (dmb
  // stands for dsb, dmb.st for dsb.st).
  switch (A) {
  case Arch::Power:
    if (IncludeWWOnly)
      return {fence::Eieio, fence::LwSync, fence::Sync};
    return {fence::LwSync, fence::Sync};
  case Arch::ARM:
    if (IncludeWWOnly)
      return {fence::DmbSt, fence::Dmb};
    return {fence::Dmb};
  case Arch::TSO:
    return {fence::MFence};
  case Arch::SC:
  case Arch::CppRA:
    return {};
  }
  return {};
}

std::vector<RepairAction> cats::enumerateActions(const LitmusTest &Test,
                                                 bool IncludeWWOnly) {
  const Arch A = Test.TargetArch;
  const std::vector<std::string> Vocab =
      repairFenceVocabulary(A, IncludeWWOnly);
  const std::string ControlFence = archControlFence(A);
  const bool HasControlFence = archHasFence(A, ControlFence);

  std::vector<RepairAction> Actions;
  for (const RepairSite &Site : enumerateSites(Test)) {
    auto At = [&Site](RepairMech M, std::string Fence = "") {
      RepairAction Act;
      Act.Site = Site;
      Act.Mech = M;
      Act.FenceName = std::move(Fence);
      return Act;
    };
    // Fences, skipping ones the gap's existing fences already imply.
    for (const std::string &F : Vocab) {
      bool Implied = false;
      for (const std::string &G : Site.GapFences)
        Implied |= fenceLeq(F, G);
      if (!Implied)
        Actions.push_back(At(RepairMech::Fence, F));
    }
    // Dependencies start at a read, and add nothing at a gap an existing
    // fence covering the non-WW pairs already orders (repairActionLeq's
    // dependency-below-fence rule).
    bool DepsImplied = false;
    for (const std::string &G : Site.GapFences) {
      const FenceStrength S = fenceStrength(G);
      DepsImplied |= S.Known && S.Cov >= FenceStrength::AllButWR;
    }
    if (Site.PrevLoadReg < 0 || DepsImplied)
      continue;
    if (!Site.NextHasAddrDep)
      Actions.push_back(At(RepairMech::Addr));
    if (Site.NextIsImmStore)
      Actions.push_back(At(RepairMech::Data));
    if (!Site.GapHasBranch)
      Actions.push_back(At(RepairMech::Ctrl));
    if (HasControlFence) {
      bool GapHasCfence =
          std::find(Site.GapFences.begin(), Site.GapFences.end(),
                    ControlFence) != Site.GapFences.end();
      if (!(Site.GapHasBranch && GapHasCfence))
        Actions.push_back(At(RepairMech::CtrlCfence));
    }
  }
  return Actions;
}

unsigned cats::repairActionCost(Arch A, const RepairAction &Act) {
  switch (Act.Mech) {
  case RepairMech::Fence:
    return fenceCostFor(A, Act.FenceName);
  case RepairMech::Addr:
  case RepairMech::Data:
  case RepairMech::Ctrl:
    return 1;
  case RepairMech::CtrlCfence:
    return 1 + fenceCostFor(A, archControlFence(A));
  }
  return 1;
}

bool cats::repairActionLeq(const RepairAction &A, const RepairAction &B) {
  if (!A.Site.sameAs(B.Site))
    return false;
  if (A.Mech == RepairMech::Fence) {
    // A fence is never below a dependency (cumulativity, wider sources).
    return B.Mech == RepairMech::Fence && fenceLeq(A.FenceName, B.FenceName);
  }
  if (B.Mech == RepairMech::Fence) {
    // A dependency starts at a read, so every pair it orders is
    // read-sourced and po-crosses the gap; a fence covering the non-WW
    // pairs there orders all of them, cumulativity on top.
    const FenceStrength S = fenceStrength(B.FenceName);
    return S.Known && S.Cov >= FenceStrength::AllButWR;
  }
  if (A.Mech == B.Mech)
    return true;
  return A.Mech == RepairMech::Ctrl && B.Mech == RepairMech::CtrlCfence;
}

Expected<LitmusTest> cats::applyRepair(
    const LitmusTest &Test, const std::vector<RepairAction> &Actions) {
  using Fail = Expected<LitmusTest>;
  for (size_t I = 0; I < Actions.size(); ++I) {
    const RepairSite &S = Actions[I].Site;
    if (S.Thread < 0 ||
        static_cast<size_t>(S.Thread) >= Test.Threads.size() ||
        S.InsertAt >= Test.Threads[S.Thread].size())
      return Fail::error("repair: action site out of range: " +
                         Actions[I].toString());
    for (size_t J = I + 1; J < Actions.size(); ++J)
      if (S.sameAs(Actions[J].Site))
        return Fail::error("repair: two actions at site " + S.toString());
  }

  LitmusTest Out = Test;

  // Per thread, apply back to front so earlier insertion points stay
  // valid; fresh registers start past everything the thread touches.
  std::map<ThreadId, std::vector<const RepairAction *>> ByThread;
  for (const RepairAction &Act : Actions)
    ByThread[Act.Site.Thread].push_back(&Act);

  for (auto &[T, List] : ByThread) {
    ThreadCode &Code = Out.Threads[T];
    Register Fresh = 0;
    for (const Instruction &I : Code) {
      Fresh = std::max(Fresh, I.Dst + 1);
      if (I.Src1.isReg())
        Fresh = std::max(Fresh, I.Src1.asReg() + 1);
      if (I.Src2.isReg())
        Fresh = std::max(Fresh, I.Src2.asReg() + 1);
      Fresh = std::max(Fresh, I.AddrDep + 1);
    }
    std::sort(List.begin(), List.end(),
              [](const RepairAction *A, const RepairAction *B) {
                return A->Site.InsertAt > B->Site.InsertAt;
              });

    for (const RepairAction *Act : List) {
      const unsigned At = Act->Site.InsertAt;
      const Register SrcReg = Act->Site.PrevLoadReg;
      switch (Act->Mech) {
      case RepairMech::Fence:
        Code.insert(Code.begin() + At,
                    Instruction::fenceNamed(Act->FenceName));
        break;
      case RepairMech::Ctrl:
        if (SrcReg < 0)
          return Fail::error("repair: ctrl needs a load before the gap");
        Code.insert(Code.begin() + At, Instruction::cmpBranch(SrcReg));
        break;
      case RepairMech::CtrlCfence: {
        if (SrcReg < 0)
          return Fail::error("repair: ctrl+cfence needs a load before "
                             "the gap");
        const char *Cfence = archControlFence(Test.TargetArch);
        Code.insert(Code.begin() + At, Instruction::fenceNamed(Cfence));
        Code.insert(Code.begin() + At, Instruction::cmpBranch(SrcReg));
        break;
      }
      case RepairMech::Addr: {
        if (SrcReg < 0)
          return Fail::error("repair: addr needs a load before the gap");
        if (Code[At].AddrDep != -1)
          return Fail::error("repair: access already carries an address "
                             "dependency");
        const Register Dep = Fresh++;
        Code.insert(Code.begin() + At,
                    Instruction::xorOp(Dep, SrcReg, SrcReg));
        Code[At + 1].AddrDep = Dep;
        break;
      }
      case RepairMech::Data: {
        if (SrcReg < 0)
          return Fail::error("repair: data needs a load before the gap");
        Instruction &St = Code[At];
        if (St.Op != Opcode::Store || !St.Src1.isImm())
          return Fail::error("repair: data needs an immediate store after "
                             "the gap");
        // The diy recipe: zero the source register, add the constant, so
        // the stored value is unchanged but flows through the load.
        const Register ImmReg = Fresh++;
        const Register ZeroReg = Fresh++;
        const Register ValReg = Fresh++;
        const Value V = St.Src1.asImm();
        St.Src1 = Operand::reg(ValReg);
        Code.insert(Code.begin() + At,
                    Instruction::addOp(ValReg, ZeroReg, ImmReg));
        Code.insert(Code.begin() + At,
                    Instruction::xorOp(ZeroReg, SrcReg, SrcReg));
        Code.insert(Code.begin() + At,
                    Instruction::move(ImmReg, Operand::imm(V)));
        break;
      }
      }
    }
  }

  std::vector<std::string> Tags;
  for (const RepairAction &Act : Actions)
    Tags.push_back(Act.toString());
  Out.Name = Test.Name + "+repair[" + joinStrings(Tags, ",") + "]";

  std::string Problem = Out.validate();
  if (!Problem.empty())
    return Fail::error("repair: mutant fails validation: " + Problem);
  return Out;
}
