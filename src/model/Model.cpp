//===- Model.cpp - The generic axiomatic framework (Fig. 5) ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "model/Model.h"

#include <algorithm>

using namespace cats;

Model::~Model() = default;

const char *cats::axiomLetter(Axiom A) {
  switch (A) {
  case Axiom::ScPerLocation:
    return "S";
  case Axiom::NoThinAir:
    return "T";
  case Axiom::Observation:
    return "O";
  case Axiom::Propagation:
    return "P";
  }
  return "?";
}

const char *cats::axiomName(Axiom A) {
  switch (A) {
  case Axiom::ScPerLocation:
    return "sc-per-location";
  case Axiom::NoThinAir:
    return "no-thin-air";
  case Axiom::Observation:
    return "observation";
  case Axiom::Propagation:
    return "propagation";
  }
  return "?";
}

std::string Verdict::letters() const {
  std::string Out;
  for (Axiom A : Violated)
    Out += axiomLetter(A);
  return Out;
}

bool Verdict::violates(Axiom A) const {
  for (Axiom V : Violated)
    if (V == A)
      return true;
  return false;
}

Relation Model::cachedPpo(const Execution &Exe) const {
  return Exe.modelMemo(memoTag(), MemoPpo, ppoTier(Exe),
                       [&] { return ppo(Exe); });
}

Relation Model::cachedFences(const Execution &Exe) const {
  return Exe.modelMemo(memoTag(), MemoFences, fencesTier(),
                       [&] { return fences(Exe); });
}

MemoTier Model::hbTier(const Execution &Exe) const {
  // hb = ppo | fences | rfe: at least per-rf (rfe), plus whatever the
  // architecture functions need.
  MemoTier T = MemoTier::PerRf;
  T = std::max(T, ppoTier(Exe));
  T = std::max(T, fencesTier());
  return T;
}

Relation Model::cachedHappensBefore(const Execution &Exe) const {
  return Exe.modelMemo(memoTag(), MemoHb, hbTier(Exe), [&] {
    return cachedPpo(Exe) | cachedFences(Exe) | Exe.rfe();
  });
}

Relation Model::cachedHbStar(const Execution &Exe) const {
  return Exe.modelMemo(memoTag(), MemoHbStar, hbTier(Exe), [&] {
    return cachedHappensBefore(Exe).reflexiveTransitiveClosure();
  });
}

Relation Model::happensBefore(const Execution &Exe) const {
  return cachedHappensBefore(Exe);
}

Verdict Model::check(const Execution &Exe) const {
  Verdict Out;
  AxiomStyle Style = style();

  auto Fail = [&Out](Axiom A) {
    Out.Allowed = false;
    Out.Violated.push_back(A);
  };

  // SC PER LOCATION: acyclic(po-loc | com), with the llh weakening removing
  // read-read pairs from po-loc (Table VII). The check is independent of
  // the model (up to the llh bit), so its closure is memoized under a
  // tag shared by every model instance.
  static const char UniprocTag = 0, UniprocLlhTag = 0;
  Relation PoLocComTc = Exe.modelMemo(
      Style.AllowLoadLoadHazard ? &UniprocLlhTag : &UniprocTag, 0, [&] {
        Relation PoLoc = Exe.poLoc();
        if (Style.AllowLoadLoadHazard)
          PoLoc = PoLoc - PoLoc.restrict(Exe.reads(), Exe.reads());
        return (PoLoc | Exe.com()).transitiveClosure();
      });
  if (!PoLocComTc.isIrreflexive())
    Fail(Axiom::ScPerLocation);

  Relation Hb = cachedHappensBefore(Exe);

  // NO THIN AIR: acyclic(hb).
  if (!Style.DisableNoThinAir && !Hb.isAcyclic())
    Fail(Axiom::NoThinAir);

  // OBSERVATION: irreflexive(fre; prop; hb*).
  Relation Prop = Exe.modelMemo(memoTag(), MemoProp, propTier(Exe),
                                [&] { return prop(Exe); });
  Relation HbStar = cachedHbStar(Exe);
  if (!Exe.fre().compose(Prop).compose(HbStar).isIrreflexive())
    Fail(Axiom::Observation);

  // PROPAGATION: acyclic(co | prop), or the C++ R-A weakening
  // irreflexive(prop; co).
  if (Style.PropagationIrreflexiveOnly) {
    if (!Prop.compose(Exe.Co).isIrreflexive())
      Fail(Axiom::Propagation);
  } else if (!(Exe.Co | Prop).isAcyclic()) {
    Fail(Axiom::Propagation);
  }

  return Out;
}
