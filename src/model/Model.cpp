//===- Model.cpp - The generic axiomatic framework (Fig. 5) ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "model/Model.h"

using namespace cats;

Model::~Model() = default;

const char *cats::axiomLetter(Axiom A) {
  switch (A) {
  case Axiom::ScPerLocation:
    return "S";
  case Axiom::NoThinAir:
    return "T";
  case Axiom::Observation:
    return "O";
  case Axiom::Propagation:
    return "P";
  }
  return "?";
}

std::string Verdict::letters() const {
  std::string Out;
  for (Axiom A : Violated)
    Out += axiomLetter(A);
  return Out;
}

bool Verdict::violates(Axiom A) const {
  for (Axiom V : Violated)
    if (V == A)
      return true;
  return false;
}

Relation Model::happensBefore(const Execution &Exe) const {
  return ppo(Exe) | fences(Exe) | Exe.rfe();
}

Verdict Model::check(const Execution &Exe) const {
  Verdict Out;
  AxiomStyle Style = style();

  auto Fail = [&Out](Axiom A) {
    Out.Allowed = false;
    Out.Violated.push_back(A);
  };

  // SC PER LOCATION: acyclic(po-loc | com), with the llh weakening removing
  // read-read pairs from po-loc (Table VII).
  Relation PoLoc = Exe.poLoc();
  if (Style.AllowLoadLoadHazard)
    PoLoc = PoLoc - PoLoc.restrict(Exe.reads(), Exe.reads());
  if (!(PoLoc | Exe.com()).isAcyclic())
    Fail(Axiom::ScPerLocation);

  Relation Hb = happensBefore(Exe);

  // NO THIN AIR: acyclic(hb).
  if (!Style.DisableNoThinAir && !Hb.isAcyclic())
    Fail(Axiom::NoThinAir);

  // OBSERVATION: irreflexive(fre; prop; hb*).
  Relation Prop = prop(Exe);
  Relation HbStar = Hb.reflexiveTransitiveClosure();
  if (!Exe.fre().compose(Prop).compose(HbStar).isIrreflexive())
    Fail(Axiom::Observation);

  // PROPAGATION: acyclic(co | prop), or the C++ R-A weakening
  // irreflexive(prop; co).
  if (Style.PropagationIrreflexiveOnly) {
    if (!Prop.compose(Exe.Co).isIrreflexive())
      Fail(Axiom::Propagation);
  } else if (!(Exe.Co | Prop).isAcyclic()) {
    Fail(Axiom::Propagation);
  }

  return Out;
}
