//===- Model.cpp - The generic axiomatic framework (Fig. 5) ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "model/Model.h"

#include <algorithm>

using namespace cats;

Model::~Model() = default;

const char *cats::axiomLetter(Axiom A) {
  switch (A) {
  case Axiom::ScPerLocation:
    return "S";
  case Axiom::NoThinAir:
    return "T";
  case Axiom::Observation:
    return "O";
  case Axiom::Propagation:
    return "P";
  }
  return "?";
}

const char *cats::axiomName(Axiom A) {
  switch (A) {
  case Axiom::ScPerLocation:
    return "sc-per-location";
  case Axiom::NoThinAir:
    return "no-thin-air";
  case Axiom::Observation:
    return "observation";
  case Axiom::Propagation:
    return "propagation";
  }
  return "?";
}

std::string Verdict::letters() const {
  std::string Out;
  for (Axiom A : Violated)
    Out += axiomLetter(A);
  return Out;
}

bool Verdict::violates(Axiom A) const {
  for (Axiom V : Violated)
    if (V == A)
      return true;
  return false;
}

Relation Model::cachedPpo(const Execution &Exe) const {
  return Exe.modelMemo(memoTag(), MemoPpo, ppoTier(Exe),
                       [&] { return ppo(Exe); });
}

Relation Model::cachedFences(const Execution &Exe) const {
  return Exe.modelMemo(memoTag(), MemoFences, fencesTier(),
                       [&] { return fences(Exe); });
}

MemoTier Model::hbTier(const Execution &Exe) const {
  // hb = ppo | fences | rfe: at least per-rf (rfe), plus whatever the
  // architecture functions need.
  MemoTier T = MemoTier::PerRf;
  T = std::max(T, ppoTier(Exe));
  T = std::max(T, fencesTier());
  return T;
}

Relation Model::cachedHappensBefore(const Execution &Exe) const {
  return Exe.modelMemo(memoTag(), MemoHb, hbTier(Exe), [&] {
    return cachedPpo(Exe) | cachedFences(Exe) | Exe.rfe();
  });
}

Relation Model::cachedHbStar(const Execution &Exe) const {
  return Exe.modelMemo(memoTag(), MemoHbStar, hbTier(Exe), [&] {
    return cachedHappensBefore(Exe).reflexiveTransitiveClosure();
  });
}

Relation Model::happensBefore(const Execution &Exe) const {
  return cachedHappensBefore(Exe);
}

Relation Model::cachedProp(const Execution &Exe) const {
  return Exe.modelMemo(memoTag(), MemoProp, propTier(Exe),
                       [&] { return prop(Exe); });
}

Relation Model::scPerLocationPoLoc(const Execution &Exe) const {
  Relation PoLoc = Exe.poLoc();
  if (style().AllowLoadLoadHazard)
    PoLoc = PoLoc - PoLoc.restrict(Exe.reads(), Exe.reads());
  return PoLoc;
}

Verdict Model::check(const Execution &Exe) const {
  Verdict Out;
  AxiomStyle Style = style();

  auto Fail = [&Out](Axiom A) {
    Out.Allowed = false;
    Out.Violated.push_back(A);
  };

  // SC PER LOCATION: acyclic(po-loc | com), with the llh weakening removing
  // read-read pairs from po-loc (Table VII). The check is independent of
  // the model (up to the llh bit), so its closure is memoized under a
  // tag shared by every model instance.
  static const char UniprocTag = 0, UniprocLlhTag = 0;
  Relation PoLocComTc = Exe.modelMemo(
      Style.AllowLoadLoadHazard ? &UniprocLlhTag : &UniprocTag, 0,
      [&] { return (scPerLocationPoLoc(Exe) | Exe.com()).transitiveClosure(); });
  if (!PoLocComTc.isIrreflexive())
    Fail(Axiom::ScPerLocation);

  Relation Hb = cachedHappensBefore(Exe);

  // NO THIN AIR: acyclic(hb).
  if (!Style.DisableNoThinAir && !Hb.isAcyclic())
    Fail(Axiom::NoThinAir);

  // OBSERVATION: irreflexive(fre; prop; hb*).
  Relation Prop = cachedProp(Exe);
  Relation HbStar = cachedHbStar(Exe);
  if (!Exe.fre().compose(Prop).compose(HbStar).isIrreflexive())
    Fail(Axiom::Observation);

  // PROPAGATION: acyclic(co | prop), or the C++ R-A weakening
  // irreflexive(prop; co).
  if (Style.PropagationIrreflexiveOnly) {
    if (!Prop.compose(Exe.Co).isIrreflexive())
      Fail(Axiom::Propagation);
  } else if (!(Exe.Co | Prop).isAcyclic()) {
    Fail(Axiom::Propagation);
  }

  return Out;
}

std::vector<LabeledEdge> Model::labelWalk(
    const std::vector<EventId> &Walk,
    const std::vector<std::pair<std::string, const Relation *>> &Sources) {
  std::vector<LabeledEdge> Out;
  for (size_t I = 0; I + 1 < Walk.size(); ++I) {
    LabeledEdge E;
    E.From = Walk[I];
    E.To = Walk[I + 1];
    E.Label = "?";
    for (const auto &[Name, Rel] : Sources) {
      if (Rel->test(E.From, E.To)) {
        E.Label = Name;
        break;
      }
    }
    Out.push_back(std::move(E));
  }
  return Out;
}

std::vector<std::pair<std::string, const Relation *>>
Model::hbEdgeSources(const Execution &Exe,
                     std::vector<Relation> &Storage) const {
  // Reserve up front: Sources keeps raw pointers into Storage, so it must
  // never reallocate once handed out.
  Storage.reserve(Storage.size() + Exe.Fences.size() + 3);
  std::vector<std::pair<std::string, const Relation *>> Sources;
  Storage.push_back(Exe.rfe());
  Sources.emplace_back("rf", &Storage.back());
  // Prefer the concrete fence mnemonic ("fence:sync") over the generic
  // label whenever the hb edge lies in one of the execution's named fence
  // relations *and* in the model's fences() contribution.
  Relation ModelFences = cachedFences(Exe);
  for (const auto &[Name, Rel] : Exe.Fences) {
    Storage.push_back(Rel & ModelFences);
    Sources.emplace_back("fence:" + Name, &Storage.back());
  }
  Storage.push_back(std::move(ModelFences));
  Sources.emplace_back("fence", &Storage.back());
  Storage.push_back(cachedPpo(Exe));
  Sources.emplace_back("ppo", &Storage.back());
  return Sources;
}

std::vector<LabeledEdge> Model::explainViolation(Axiom A,
                                                 const Execution &Exe) const {
  switch (A) {
  case Axiom::ScPerLocation: {
    Relation PoLoc = scPerLocationPoLoc(Exe);
    std::vector<EventId> Cycle = (PoLoc | Exe.com()).minimalCycle();
    if (Cycle.empty())
      return {};
    Relation Fr = Exe.fr();
    return labelWalk(Cycle, {{"rf", &Exe.Rf},
                             {"co", &Exe.Co},
                             {"fr", &Fr},
                             {"po-loc", &PoLoc}});
  }

  case Axiom::NoThinAir: {
    std::vector<EventId> Cycle = cachedHappensBefore(Exe).minimalCycle();
    if (Cycle.empty())
      return {};
    std::vector<Relation> Storage;
    return labelWalk(Cycle, hbEdgeSources(Exe, Storage));
  }

  case Axiom::Observation: {
    // irreflexive(fre; prop; hb*) fails: find a concrete decomposition
    // R -fre-> W1 -prop-> W2 -hb*-> R and expand the hb* leg into hb
    // steps so every edge is drawable.
    Relation Fre = Exe.fre();
    Relation Prop = cachedProp(Exe);
    Relation HbStar = cachedHbStar(Exe);
    Relation PropHbStar = Prop.compose(HbStar);
    Relation Whole = Fre.compose(PropHbStar);
    const unsigned N = Fre.size();
    for (EventId R = 0; R < N; ++R) {
      if (!Whole.test(R, R))
        continue;
      for (EventId W1 = 0; W1 < N; ++W1) {
        if (!Fre.test(R, W1))
          continue;
        for (EventId W2 = 0; W2 < N; ++W2) {
          if (!Prop.test(W1, W2) || !HbStar.test(W2, R))
            continue;
          std::vector<LabeledEdge> Out;
          Out.push_back({R, W1, "fr"});
          Out.push_back({W1, W2, "prop"});
          if (W2 != R) {
            std::vector<Relation> Storage;
            auto Sources = hbEdgeSources(Exe, Storage);
            std::vector<EventId> Path =
                cachedHappensBefore(Exe).shortestPath(W2, R);
            for (LabeledEdge &E : labelWalk(Path, Sources))
              Out.push_back(std::move(E));
          }
          return Out;
        }
      }
    }
    return {};
  }

  case Axiom::Propagation: {
    Relation Prop = cachedProp(Exe);
    if (style().PropagationIrreflexiveOnly) {
      // irreflexive(prop; co) fails: a two-edge loop X -prop-> Y -co-> X.
      const unsigned N = Prop.size();
      for (EventId X = 0; X < N; ++X) {
        for (EventId Y = 0; Y < N; ++Y) {
          if (Prop.test(X, Y) && Exe.Co.test(Y, X))
            return {{X, Y, "prop"}, {Y, X, "co"}};
        }
      }
      return {};
    }
    std::vector<EventId> Cycle = (Exe.Co | Prop).minimalCycle();
    if (Cycle.empty())
      return {};
    return labelWalk(Cycle, {{"co", &Exe.Co}, {"prop", &Prop}});
  }
  }
  return {};
}

std::string Model::definitionFingerprint() const {
  AxiomStyle S = style();
  std::string Out = "native:" + name();
  Out += ";llh=";
  Out += S.AllowLoadLoadHazard ? '1' : '0';
  Out += ";prop-irr=";
  Out += S.PropagationIrreflexiveOnly ? '1' : '0';
  Out += ";no-thin-air-off=";
  Out += S.DisableNoThinAir ? '1' : '0';
  return Out;
}
