//===- SimpleModels.h - SC, TSO and C++ R-A instances ---------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strong instances of the framework (Fig. 21):
///
///   SC:      ppo = po                 prop = ppo | fences | rf | fr
///   TSO:     ppo = po \ WR            ffence = mfence
///            prop = ppo | fences | rfe | fr
///   C++ R-A: ppo = sb (= po)          fences = empty    prop = hb+
///            with PROPAGATION weakened to irreflexive(prop; co)
///
/// Lemma 4.1: the SC and TSO instances are equivalent to Lamport SC and
/// Sparc TSO; the tests cross-check this against reference formulations.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_MODEL_SIMPLEMODELS_H
#define CATS_MODEL_SIMPLEMODELS_H

#include "model/Model.h"

namespace cats {

/// Lamport's Sequential Consistency as an instance of the framework.
class ScModel : public Model {
public:
  std::string name() const override { return "SC"; }
  Relation ppo(const Execution &Exe) const override;
  Relation fences(const Execution &Exe) const override;
  Relation prop(const Execution &Exe) const override;
  MemoTier ppoTier(const Execution &) const override {
    return MemoTier::Static;
  }
  MemoTier fencesTier() const override { return MemoTier::Static; }
};

/// Sparc/x86 Total Store Order.
class TsoModel : public Model {
public:
  std::string name() const override { return "TSO"; }
  Relation ppo(const Execution &Exe) const override;
  Relation fences(const Execution &Exe) const override;
  Relation prop(const Execution &Exe) const override;
  MemoTier ppoTier(const Execution &) const override {
    return MemoTier::Static;
  }
  MemoTier fencesTier() const override { return MemoTier::Static; }
};

/// C++ restricted to release-acquire atomics, in the (slightly stronger
/// than the standard) shape of Fig. 21, with the documented PROPAGATION
/// weakening that makes it match HBVSMO exactly.
class CppRaModel : public Model {
public:
  std::string name() const override { return "C++RA"; }
  Relation ppo(const Execution &Exe) const override;
  Relation fences(const Execution &Exe) const override;
  Relation prop(const Execution &Exe) const override;
  MemoTier ppoTier(const Execution &) const override {
    return MemoTier::Static;
  }
  MemoTier fencesTier() const override { return MemoTier::Static; }
  MemoTier propTier(const Execution &) const override {
    return MemoTier::PerRf;
  }
  AxiomStyle style() const override {
    AxiomStyle S;
    S.PropagationIrreflexiveOnly = true;
    return S;
  }
};

/// Sparc Partial Store Order: like TSO, but write-write pairs may also
/// be reordered unless fenced. An instantiation exercise in the spirit of
/// Sec. 4.9 ("basic bricks from which one can build a model at will").
class PsoModel : public Model {
public:
  std::string name() const override { return "PSO"; }
  Relation ppo(const Execution &Exe) const override;
  Relation fences(const Execution &Exe) const override;
  Relation prop(const Execution &Exe) const override;
  MemoTier ppoTier(const Execution &) const override {
    return MemoTier::Static;
  }
  MemoTier fencesTier() const override { return MemoTier::Static; }
};

/// Sparc Relaxed Memory Order: only dependencies and fences order
/// accesses, and load-load hazards are officially allowed (Sec. 4.9
/// notes RMO permits coRR), which we express with the llh axiom style.
class RmoModel : public Model {
public:
  std::string name() const override { return "RMO"; }
  Relation ppo(const Execution &Exe) const override;
  Relation fences(const Execution &Exe) const override;
  Relation prop(const Execution &Exe) const override;
  MemoTier ppoTier(const Execution &) const override {
    return MemoTier::Static;
  }
  MemoTier fencesTier() const override { return MemoTier::Static; }
  AxiomStyle style() const override {
    AxiomStyle S;
    S.AllowLoadLoadHazard = true;
    return S;
  }
};

/// Reference formulation for Lemma 4.1: an execution is SC iff
/// acyclic(po | com) ([Alglave 2012, Def. 21]).
bool isScReference(const Execution &Exe);

/// Reference formulation for Lemma 4.1: an execution is TSO iff
/// acyclic(ppo | co | rfe | fr | fences) with ppo = po \ WR
/// ([Alglave 2012, Def. 23]).
bool isTsoReference(const Execution &Exe);

} // namespace cats

#endif // CATS_MODEL_SIMPLEMODELS_H
