//===- HwModel.cpp - Power and ARM instances (Figs. 17/18/25) -------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "model/HwModel.h"

#include <mutex>
#include <set>

using namespace cats;

namespace {

/// Interns \p Key, returning a stable address equal across instances
/// constructed from the same key.
const void *internMemoTag(const std::string &Key) {
  static std::mutex Lock;
  static std::set<std::string> Tags;
  std::lock_guard<std::mutex> Guard(Lock);
  return &*Tags.insert(Key).first;
}

/// Everything of HwConfig that feeds ppo/fences/prop (not the axiom
/// style, not the display name).
std::string tripleIdentity(const HwConfig &C) {
  std::string Key;
  auto Append = [&Key](const std::vector<std::string> &Names) {
    for (const std::string &N : Names) {
      Key += N;
      Key += ',';
    }
    Key += '|';
  };
  Append(C.FullFences);
  Append(C.FullFencesWW);
  Append(C.LightFencesNoWR);
  Append(C.LightFencesWW);
  Key += C.Cc0IncludesPoLoc ? "cc0poloc|" : "|";
  Key += C.PpoUsesRdwDetour ? "rdwdetour" : "";
  return Key;
}

} // namespace

HwModel::HwModel(HwConfig ConfigIn)
    : Config(std::move(ConfigIn)),
      MemoIdentity(internMemoTag("hw:" + tripleIdentity(Config))) {}

std::string HwModel::definitionFingerprint() const {
  // The triple identity deliberately omits the name and axiom style (so
  // ARM/ARM llh share memo entries); the cache fingerprint needs both.
  std::string Out = "hw:" + Config.Name + ";" + tripleIdentity(Config);
  Out += ";llh=";
  Out += Config.AllowLoadLoadHazard ? '1' : '0';
  return Out;
}

unsigned HwConfig::fenceCost(const std::string &FenceName) const {
  for (const auto &[Name, Cost] : FenceCosts)
    if (Name == FenceName)
      return Cost;
  return 0;
}

HwConfig HwConfig::power() {
  HwConfig C;
  C.Name = "Power";
  C.FullFences = {fence::Sync};
  C.LightFencesNoWR = {fence::LwSync};
  C.LightFencesWW = {fence::Eieio};
  C.Cc0IncludesPoLoc = true;
  C.FenceCosts = {{fence::Sync, 6},
                  {fence::LwSync, 3},
                  {fence::Eieio, 2},
                  {fence::ISync, 1}};
  return C;
}

HwConfig HwConfig::arm() {
  HwConfig C;
  C.Name = "ARM";
  C.FullFences = {fence::Dmb, fence::Dsb};
  C.FullFencesWW = {fence::DmbSt, fence::DsbSt};
  C.Cc0IncludesPoLoc = false;
  C.FenceCosts = {{fence::Dmb, 6},
                  {fence::Dsb, 7},
                  {fence::DmbSt, 3},
                  {fence::DsbSt, 4},
                  {fence::Isb, 1}};
  return C;
}

HwConfig HwConfig::powerArm() {
  HwConfig C = arm();
  C.Name = "Power-ARM";
  C.Cc0IncludesPoLoc = true;
  return C;
}

HwConfig HwConfig::armLlh() {
  HwConfig C = arm();
  C.Name = "ARM llh";
  C.AllowLoadLoadHazard = true;
  return C;
}

Relation HwModel::fullFence(const Execution &Exe) const {
  Relation Out(Exe.numEvents());
  for (const std::string &Name : Config.FullFences)
    Out |= Exe.fenceRelation(Name);
  EventSet W = Exe.writes();
  for (const std::string &Name : Config.FullFencesWW)
    Out |= Exe.fenceRelation(Name).restrict(W, W);
  return Out;
}

Relation HwModel::lightFence(const Execution &Exe) const {
  Relation Out(Exe.numEvents());
  EventSet W = Exe.writes();
  EventSet R = Exe.reads();
  for (const std::string &Name : Config.LightFencesNoWR) {
    // lwfence = lwsync \ WR (Fig. 17): an lwsync between a write and a read
    // does not order the pair.
    Relation F = Exe.fenceRelation(Name);
    Out |= F - F.restrict(W, R);
  }
  for (const std::string &Name : Config.LightFencesWW)
    Out |= Exe.fenceRelation(Name).restrict(W, W);
  return Out;
}

Relation HwModel::fences(const Execution &Exe) const {
  return lightFence(Exe) | fullFence(Exe);
}

Relation HwModel::ppo(const Execution &Exe) const {
  unsigned N = Exe.numEvents();

  // Base ingredients of Fig. 25.
  Relation Dp = Exe.Addr | Exe.Data;
  Relation Ii0 = Dp | Exe.rfi();
  Relation Ci0 = Exe.CtrlCfence;
  if (Config.PpoUsesRdwDetour) {
    Ii0 |= Exe.rdw();
    Ci0 |= Exe.detour();
  }
  Relation Ic0(N);
  Relation Cc0 = Dp | Exe.Ctrl | Exe.Addr.compose(Exe.Po);
  if (Config.Cc0IncludesPoLoc)
    Cc0 |= Exe.poLoc();

  // Least fixpoint of the mutually recursive ii/ic/ci/cc equations.
  Relation Ii = Ii0, Ic = Ic0, Ci = Ci0, Cc = Cc0;
  while (true) {
    Relation NewIi = Ii0 | Ci | Ic.compose(Ci) | Ii.compose(Ii);
    Relation NewIc =
        Ic0 | Ii | Cc | Ic.compose(Cc) | Ii.compose(Ic);
    Relation NewCi = Ci0 | Ci.compose(Ii) | Cc.compose(Ci);
    Relation NewCc = Cc0 | Ci | Ci.compose(Ic) | Cc.compose(Cc);
    if (NewIi == Ii && NewIc == Ic && NewCi == Ci && NewCc == Cc)
      break;
    Ii = std::move(NewIi);
    Ic = std::move(NewIc);
    Ci = std::move(NewCi);
    Cc = std::move(NewCc);
  }

  EventSet R = Exe.reads();
  EventSet W = Exe.writes();
  return Ii.restrict(R, R) | Ic.restrict(R, W);
}

Relation HwModel::prop(const Execution &Exe) const {
  // hb*, fences and the full-fence part are shared with the axiom
  // evaluation via the per-candidate memo (ppo's Fig. 25 fixpoint is the
  // expensive one: without the memo it would run again here through hb).
  Relation HbStar = cachedHbStar(Exe);
  Relation FencesRel = cachedFences(Exe);
  Relation FFence = Exe.modelMemo(memoTag(), MemoFullFence, MemoTier::Static,
                                  [&] { return fullFence(Exe); });

  // A-cumulativity: rfe; fences (Fig. 18).
  Relation ACumul = Exe.rfe().compose(FencesRel);
  Relation PropBase = (FencesRel | ACumul).compose(HbStar);

  EventSet W = Exe.writes();
  Relation ComStar = Exe.comStar();
  Relation PropBaseStar = PropBase.reflexiveTransitiveClosure();

  return PropBase.restrict(W, W) |
         ComStar.compose(PropBaseStar).compose(FFence).compose(HbStar);
}
