//===- HwModel.cpp - Power and ARM instances (Figs. 17/18/25) -------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "model/HwModel.h"

using namespace cats;

HwConfig HwConfig::power() {
  HwConfig C;
  C.Name = "Power";
  C.FullFences = {fence::Sync};
  C.LightFencesNoWR = {fence::LwSync};
  C.LightFencesWW = {fence::Eieio};
  C.Cc0IncludesPoLoc = true;
  return C;
}

HwConfig HwConfig::arm() {
  HwConfig C;
  C.Name = "ARM";
  C.FullFences = {fence::Dmb, fence::Dsb};
  C.FullFencesWW = {fence::DmbSt, fence::DsbSt};
  C.Cc0IncludesPoLoc = false;
  return C;
}

HwConfig HwConfig::powerArm() {
  HwConfig C = arm();
  C.Name = "Power-ARM";
  C.Cc0IncludesPoLoc = true;
  return C;
}

HwConfig HwConfig::armLlh() {
  HwConfig C = arm();
  C.Name = "ARM llh";
  C.AllowLoadLoadHazard = true;
  return C;
}

Relation HwModel::fullFence(const Execution &Exe) const {
  Relation Out(Exe.numEvents());
  for (const std::string &Name : Config.FullFences)
    Out |= Exe.fenceRelation(Name);
  EventSet W = Exe.writes();
  for (const std::string &Name : Config.FullFencesWW)
    Out |= Exe.fenceRelation(Name).restrict(W, W);
  return Out;
}

Relation HwModel::lightFence(const Execution &Exe) const {
  Relation Out(Exe.numEvents());
  EventSet W = Exe.writes();
  EventSet R = Exe.reads();
  for (const std::string &Name : Config.LightFencesNoWR) {
    // lwfence = lwsync \ WR (Fig. 17): an lwsync between a write and a read
    // does not order the pair.
    Relation F = Exe.fenceRelation(Name);
    Out |= F - F.restrict(W, R);
  }
  for (const std::string &Name : Config.LightFencesWW)
    Out |= Exe.fenceRelation(Name).restrict(W, W);
  return Out;
}

Relation HwModel::fences(const Execution &Exe) const {
  return lightFence(Exe) | fullFence(Exe);
}

Relation HwModel::ppo(const Execution &Exe) const {
  unsigned N = Exe.numEvents();

  // Base ingredients of Fig. 25.
  Relation Dp = Exe.Addr | Exe.Data;
  Relation Ii0 = Dp | Exe.rfi();
  Relation Ci0 = Exe.CtrlCfence;
  if (Config.PpoUsesRdwDetour) {
    Ii0 |= Exe.rdw();
    Ci0 |= Exe.detour();
  }
  Relation Ic0(N);
  Relation Cc0 = Dp | Exe.Ctrl | Exe.Addr.compose(Exe.Po);
  if (Config.Cc0IncludesPoLoc)
    Cc0 |= Exe.poLoc();

  // Least fixpoint of the mutually recursive ii/ic/ci/cc equations.
  Relation Ii = Ii0, Ic = Ic0, Ci = Ci0, Cc = Cc0;
  while (true) {
    Relation NewIi = Ii0 | Ci | Ic.compose(Ci) | Ii.compose(Ii);
    Relation NewIc =
        Ic0 | Ii | Cc | Ic.compose(Cc) | Ii.compose(Ic);
    Relation NewCi = Ci0 | Ci.compose(Ii) | Cc.compose(Ci);
    Relation NewCc = Cc0 | Ci | Ci.compose(Ic) | Cc.compose(Cc);
    if (NewIi == Ii && NewIc == Ic && NewCi == Ci && NewCc == Cc)
      break;
    Ii = std::move(NewIi);
    Ic = std::move(NewIc);
    Ci = std::move(NewCi);
    Cc = std::move(NewCc);
  }

  EventSet R = Exe.reads();
  EventSet W = Exe.writes();
  return Ii.restrict(R, R) | Ic.restrict(R, W);
}

Relation HwModel::prop(const Execution &Exe) const {
  Relation Hb = happensBefore(Exe);
  Relation HbStar = Hb.reflexiveTransitiveClosure();
  Relation FencesRel = fences(Exe);
  Relation FFence = fullFence(Exe);

  // A-cumulativity: rfe; fences (Fig. 18).
  Relation ACumul = Exe.rfe().compose(FencesRel);
  Relation PropBase = (FencesRel | ACumul).compose(HbStar);

  EventSet W = Exe.writes();
  Relation ComStar = Exe.com().reflexiveTransitiveClosure();
  Relation PropBaseStar = PropBase.reflexiveTransitiveClosure();

  return PropBase.restrict(W, W) |
         ComStar.compose(PropBaseStar).compose(FFence).compose(HbStar);
}
