//===- Registry.cpp - Named access to the built-in models -----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "model/Registry.h"

#include "model/HwModel.h"
#include "model/SimpleModels.h"

#include <utility>

using namespace cats;

namespace {

const ScModel &scModel() {
  static ScModel M;
  return M;
}
const TsoModel &tsoModel() {
  static TsoModel M;
  return M;
}
const CppRaModel &cppRaModel() {
  static CppRaModel M;
  return M;
}
const PsoModel &psoModel() {
  static PsoModel M;
  return M;
}
const RmoModel &rmoModel() {
  static RmoModel M;
  return M;
}
const HwModel &powerModel() {
  static HwModel M(HwConfig::power());
  return M;
}
const HwModel &armModel() {
  static HwModel M(HwConfig::arm());
  return M;
}
const HwModel &powerArmModel() {
  static HwModel M(HwConfig::powerArm());
  return M;
}
const HwModel &armLlhModel() {
  static HwModel M(HwConfig::armLlh());
  return M;
}

} // namespace

const std::vector<const Model *> &cats::allModels() {
  static std::vector<const Model *> Models = {
      &scModel(),     &tsoModel(),      &psoModel(),
      &rmoModel(),    &cppRaModel(),    &powerModel(),
      &armModel(),    &powerArmModel(), &armLlhModel()};
  return Models;
}

const Model *cats::modelByName(const std::string &Name) {
  for (const Model *M : allModels())
    if (M->name() == Name)
      return M;
  return nullptr;
}

const Model &cats::modelFor(Arch A) {
  switch (A) {
  case Arch::SC:
    return scModel();
  case Arch::TSO:
    return tsoModel();
  case Arch::Power:
    return powerModel();
  case Arch::ARM:
    return armModel();
  case Arch::CppRA:
    return cppRaModel();
  }
  return scModel();
}

const Model *cats::strongerModel(const Model &M) {
  // Parent table of the strength forest rooted at SC. Each entry (child,
  // parent) asserts: parent allows an execution => child allows it. The
  // containments behind each edge:
  //   TSO < SC        ppo po\WR < po; prop ppo|mfence|rfe|fr < po|rf|fr
  //   PSO < TSO       ppo po\(W x M) < po\WR, same fences/prop shape
  //   RMO < PSO       ppo deps only (read-sourced, so < po\(W x M));
  //                   llh uniproc is a weakening
  //   C++RA < SC      hb po|rfe < hb_SC; prop (po|rf)+ and the weakened
  //                   PROPAGATION both sit inside acyclic(po|rf|fr|co)
  //   Power < SC      on uniproc-passing executions rfi, rdw, detour are
  //   Power-ARM < SC  po-ordered, so the ppo fixpoint, fences and prop
  //                   all live in (po|rf|fr|co)+
  //   ARM < Power-ARM identical config minus po-loc in cc0 (the ppo
  //                   fixpoint is monotone in cc0)
  //   ARM llh < ARM   identical config plus the llh uniproc weakening
  //
  // Resolved by name once into a by-position table over allModels(), so
  // the per-call path is a pointer scan: this runs per checker
  // construction, i.e. per simulated test, and Model::name() allocates.
  static const std::vector<const Model *> ParentOf = [] {
    static const std::pair<const char *, const char *> Edges[] = {
        {"TSO", "SC"},        {"PSO", "TSO"},     {"RMO", "PSO"},
        {"C++RA", "SC"},      {"Power", "SC"},    {"Power-ARM", "SC"},
        {"ARM", "Power-ARM"}, {"ARM llh", "ARM"}};
    const std::vector<const Model *> &All = allModels();
    std::vector<const Model *> P(All.size(), nullptr);
    for (const auto &[Child, Parent] : Edges)
      for (size_t I = 0; I < All.size(); ++I)
        if (All[I]->name() == Child)
          P[I] = modelByName(Parent);
    return P;
  }();
  // The claim is about the registry instances, not about whatever else
  // happens to share a display name: a foreign Model subclass named "TSO"
  // gets no ancestor. Pointer identity against the registry enforces
  // exactly that.
  const std::vector<const Model *> &All = allModels();
  for (size_t I = 0; I < All.size(); ++I)
    if (All[I] == &M)
      return ParentOf[I];
  return nullptr;
}

Expected<std::vector<const Model *>>
cats::resolveModels(const std::vector<std::string> &Names) {
  using Fail = Expected<std::vector<const Model *>>;
  if (Names.empty())
    return allModels();
  std::vector<const Model *> Out;
  for (const std::string &Name : Names) {
    const Model *M = modelByName(Name);
    if (!M)
      return Fail::error("unknown model '" + Name + "'");
    Out.push_back(M);
  }
  return Out;
}
