//===- Registry.cpp - Named access to the built-in models -----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "model/Registry.h"

#include "model/HwModel.h"
#include "model/SimpleModels.h"

using namespace cats;

namespace {

const ScModel &scModel() {
  static ScModel M;
  return M;
}
const TsoModel &tsoModel() {
  static TsoModel M;
  return M;
}
const CppRaModel &cppRaModel() {
  static CppRaModel M;
  return M;
}
const PsoModel &psoModel() {
  static PsoModel M;
  return M;
}
const RmoModel &rmoModel() {
  static RmoModel M;
  return M;
}
const HwModel &powerModel() {
  static HwModel M(HwConfig::power());
  return M;
}
const HwModel &armModel() {
  static HwModel M(HwConfig::arm());
  return M;
}
const HwModel &powerArmModel() {
  static HwModel M(HwConfig::powerArm());
  return M;
}
const HwModel &armLlhModel() {
  static HwModel M(HwConfig::armLlh());
  return M;
}

} // namespace

const std::vector<const Model *> &cats::allModels() {
  static std::vector<const Model *> Models = {
      &scModel(),     &tsoModel(),      &psoModel(),
      &rmoModel(),    &cppRaModel(),    &powerModel(),
      &armModel(),    &powerArmModel(), &armLlhModel()};
  return Models;
}

const Model *cats::modelByName(const std::string &Name) {
  for (const Model *M : allModels())
    if (M->name() == Name)
      return M;
  return nullptr;
}

const Model &cats::modelFor(Arch A) {
  switch (A) {
  case Arch::SC:
    return scModel();
  case Arch::TSO:
    return tsoModel();
  case Arch::Power:
    return powerModel();
  case Arch::ARM:
    return armModel();
  case Arch::CppRA:
    return cppRaModel();
  }
  return scModel();
}

Expected<std::vector<const Model *>>
cats::resolveModels(const std::vector<std::string> &Names) {
  using Fail = Expected<std::vector<const Model *>>;
  if (Names.empty())
    return allModels();
  std::vector<const Model *> Out;
  for (const std::string &Name : Names) {
    const Model *M = modelByName(Name);
    if (!M)
      return Fail::error("unknown model '" + Name + "'");
    Out.push_back(M);
  }
  return Out;
}
