//===- Registry.h - Named access to the built-in models -------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Singleton instances of the built-in models and lookup by name or by
/// litmus architecture.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_MODEL_REGISTRY_H
#define CATS_MODEL_REGISTRY_H

#include "litmus/LitmusTest.h"
#include "model/Model.h"
#include "support/Error.h"

#include <vector>

namespace cats {

/// All built-in models: SC, TSO, C++RA, Power, ARM, Power-ARM, ARM llh.
const std::vector<const Model *> &allModels();

/// Lookup by display name; nullptr when unknown.
const Model *modelByName(const std::string &Name);

/// Resolves a CLI --models list: an empty list means every registry
/// model, otherwise each name goes through modelByName. Fails naming the
/// first unknown model. The shared model-set resolver of the campaign
/// tools.
Expected<std::vector<const Model *>>
resolveModels(const std::vector<std::string> &Names);

/// The default model for a litmus architecture (Power for Arch::Power...).
const Model &modelFor(Arch A);

/// The designated registry model that is provably *stronger* than \p M
/// (every execution it allows, \p M allows too), or nullptr when \p M has
/// none (SC, or a model the registry does not know). The pruned judging
/// backend uses this to skip a weaker model's axiom checks once its
/// stronger ancestor has allowed the execution; the differential harness
/// (tests/differential.cpp, ModelStrengthImplications) re-derives every
/// edge of the table on the full catalogue's candidate spaces.
///
/// The edges follow from monotonicity of the four axioms of Fig. 5 in the
/// architecture triple (docs/enumeration.md spells out each containment):
/// SC > TSO > PSO > RMO, SC > C++RA, SC > Power, SC > Power-ARM, and
/// Power-ARM > ARM > ARM llh. Power vs the ARM family is deliberately
/// *not* related: the two read disjoint fence vocabularies (sync/lwsync
/// vs dmb/dsb), so neither's hb contains the other's on fenced tests.
const Model *strongerModel(const Model &M);

} // namespace cats

#endif // CATS_MODEL_REGISTRY_H
