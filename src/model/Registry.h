//===- Registry.h - Named access to the built-in models -------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Singleton instances of the built-in models and lookup by name or by
/// litmus architecture.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_MODEL_REGISTRY_H
#define CATS_MODEL_REGISTRY_H

#include "litmus/LitmusTest.h"
#include "model/Model.h"
#include "support/Error.h"

#include <vector>

namespace cats {

/// All built-in models: SC, TSO, C++RA, Power, ARM, Power-ARM, ARM llh.
const std::vector<const Model *> &allModels();

/// Lookup by display name; nullptr when unknown.
const Model *modelByName(const std::string &Name);

/// Resolves a CLI --models list: an empty list means every registry
/// model, otherwise each name goes through modelByName. Fails naming the
/// first unknown model. The shared model-set resolver of the campaign
/// tools.
Expected<std::vector<const Model *>>
resolveModels(const std::vector<std::string> &Names);

/// The default model for a litmus architecture (Power for Arch::Power...).
const Model &modelFor(Arch A);

} // namespace cats

#endif // CATS_MODEL_REGISTRY_H
