//===- SimpleModels.cpp - SC, TSO and C++ R-A instances -------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "model/SimpleModels.h"

using namespace cats;

//===----------------------------------------------------------------------===//
// SC
//===----------------------------------------------------------------------===//

Relation ScModel::ppo(const Execution &Exe) const { return Exe.Po; }

Relation ScModel::fences(const Execution &Exe) const {
  return Relation(Exe.numEvents());
}

Relation ScModel::prop(const Execution &Exe) const {
  return cachedPpo(Exe) | cachedFences(Exe) | Exe.Rf | Exe.fr();
}

//===----------------------------------------------------------------------===//
// TSO
//===----------------------------------------------------------------------===//

Relation TsoModel::ppo(const Execution &Exe) const {
  // po \ WR: only write-read pairs may be reordered (store buffering).
  return Exe.Po - Exe.Po.restrict(Exe.writes(), Exe.reads());
}

Relation TsoModel::fences(const Execution &Exe) const {
  return Exe.fenceRelation(fence::MFence);
}

Relation TsoModel::prop(const Execution &Exe) const {
  return cachedPpo(Exe) | cachedFences(Exe) | Exe.rfe() | Exe.fr();
}

//===----------------------------------------------------------------------===//
// C++ R-A
//===----------------------------------------------------------------------===//

Relation CppRaModel::ppo(const Execution &Exe) const {
  // sequenced-before is the program order of the compiled test.
  return Exe.Po;
}

Relation CppRaModel::fences(const Execution &Exe) const {
  return Relation(Exe.numEvents());
}

Relation CppRaModel::prop(const Execution &Exe) const {
  // prop = hb+ with hb = sb | rf (all atomics are release/acquire, so every
  // rf synchronises; internal rf is included in sb's transitive closure
  // effects and harmless here).
  return (Exe.Po | Exe.Rf).transitiveClosure();
}

//===----------------------------------------------------------------------===//
// PSO
//===----------------------------------------------------------------------===//

Relation PsoModel::ppo(const Execution &Exe) const {
  // po \ (WR | WW): stores may be delayed past later stores too.
  EventSet W = Exe.writes();
  return Exe.Po - Exe.Po.restrictDomain(W);
}

Relation PsoModel::fences(const Execution &Exe) const {
  return Exe.fenceRelation(fence::MFence);
}

Relation PsoModel::prop(const Execution &Exe) const {
  return cachedPpo(Exe) | cachedFences(Exe) | Exe.rfe() | Exe.fr();
}

//===----------------------------------------------------------------------===//
// RMO
//===----------------------------------------------------------------------===//

Relation RmoModel::ppo(const Execution &Exe) const {
  // Only dependencies are preserved: addr, data, and ctrl to writes.
  return Exe.Addr | Exe.Data |
         Exe.Ctrl.restrictRange(Exe.writes()) | Exe.CtrlCfence;
}

Relation RmoModel::fences(const Execution &Exe) const {
  return Exe.fenceRelation(fence::MFence);
}

Relation RmoModel::prop(const Execution &Exe) const {
  return cachedPpo(Exe) | cachedFences(Exe) | Exe.rfe() | Exe.fr();
}

//===----------------------------------------------------------------------===//
// Reference formulations (Lemma 4.1)
//===----------------------------------------------------------------------===//

bool cats::isScReference(const Execution &Exe) {
  return (Exe.Po | Exe.com()).isAcyclic();
}

bool cats::isTsoReference(const Execution &Exe) {
  // Def. 23 assumes the uniproc condition holds alongside the global
  // acyclicity check.
  if (!(Exe.poLoc() | Exe.com()).isAcyclic())
    return false;
  Relation Ppo = Exe.Po - Exe.Po.restrict(Exe.writes(), Exe.reads());
  Relation Fences = Exe.fenceRelation(fence::MFence);
  return (Ppo | Exe.Co | Exe.rfe() | Exe.fr() | Fences).isAcyclic();
}
