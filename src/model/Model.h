//===- Model.h - The generic axiomatic framework (Fig. 5) -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's generic model of weak memory. A Model supplies the three
/// architecture functions (ppo, fences, prop) of Sec. 4.1; the base class
/// then evaluates the four axioms of Fig. 5 on a candidate execution:
///
///   SC PER LOCATION   acyclic(po-loc | com)
///   NO THIN AIR       acyclic(hb)           hb = ppo | fences | rfe
///   OBSERVATION       irreflexive(fre; prop; hb*)
///   PROPAGATION       acyclic(co | prop)
///
/// Two documented weakenings are supported (Sec. 4.8/4.9 and 8.1.2): C++ R-A
/// replaces PROPAGATION by irreflexive(prop; co), and the "llh" variants drop
/// read-read pairs from po-loc in SC PER LOCATION to tolerate load-load
/// hazards.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_MODEL_MODEL_H
#define CATS_MODEL_MODEL_H

#include "event/Execution.h"
#include "relation/Relation.h"

#include <string>
#include <vector>

namespace cats {

/// The four axioms, used both for checking and for classifying violations
/// (Table VIII's S/T/O/P sets).
enum class Axiom : uint8_t {
  ScPerLocation,
  NoThinAir,
  Observation,
  Propagation
};

/// Short display name: "S", "T", "O", "P".
const char *axiomLetter(Axiom A);

/// An edge of an execution graph together with the name of the derived
/// relation it came from ("rf", "co", "fr", "po-loc", "ppo",
/// "fence:sync", "prop", ...). The witness layer (src/obs/Witness) renders
/// lists of these as DOT graphs and JSON cycles.
struct LabeledEdge {
  EventId From = 0;
  EventId To = 0;
  std::string Label;

  bool operator==(const LabeledEdge &O) const {
    return From == O.From && To == O.To && Label == O.Label;
  }
};

/// Full name as the shipped .cat models label the check ("sc-per-location",
/// "no-thin-air", "observation", "propagation"); keys the per-axiom metrics
/// counters.
const char *axiomName(Axiom A);

/// Outcome of checking one candidate execution against a model.
struct Verdict {
  /// True when no axiom is violated.
  bool Allowed = true;
  /// The violated axioms, in declaration order.
  std::vector<Axiom> Violated;

  /// Letter string like "OP" for the Table VIII classification; empty when
  /// allowed.
  std::string letters() const;

  bool violates(Axiom A) const;
};

/// How the axiom checks may be weakened per instance.
struct AxiomStyle {
  /// Drop read-read pairs from po-loc in SC PER LOCATION (ARM llh).
  bool AllowLoadLoadHazard = false;
  /// Check irreflexive(prop; co) instead of acyclic(co | prop) (C++ R-A).
  bool PropagationIrreflexiveOnly = false;
  /// Disable NO THIN AIR entirely (for exploring Java/C++-like settings,
  /// Sec. 4.9).
  bool DisableNoThinAir = false;
};

/// A memory model: the architecture triple (ppo, fences, prop) plus axiom
/// style. Instances are stateless and thread-compatible.
class Model {
public:
  virtual ~Model();

  /// Display name, e.g. "Power" or "ARM llh".
  virtual std::string name() const = 0;

  /// Preserved program order for \p Exe.
  virtual Relation ppo(const Execution &Exe) const = 0;

  /// The ordering fences relation (the architecture's "fences" function;
  /// e.g. lwsync\WR | sync on Power).
  virtual Relation fences(const Execution &Exe) const = 0;

  /// The propagation order contribution.
  virtual Relation prop(const Execution &Exe) const = 0;

  /// Axiom weakenings for this instance.
  virtual AxiomStyle style() const { return {}; }

  /// Memo volatility of ppo for \p Exe: how long a cached ppo stays valid
  /// while the incremental enumerator mutates rf/co on one scratch
  /// execution. The conservative default (per-candidate) is always sound;
  /// models whose ppo reads neither rf nor co (SC, TSO, PSO, RMO, C++ R-A)
  /// override to Static, and the hardware models answer dynamically
  /// (their ppo fixpoint reads rfi plus the rdw/detour co-slices, which
  /// are empty whenever po-loc is — per-rf on the diy corpora).
  virtual MemoTier ppoTier(const Execution &Exe) const {
    (void)Exe;
    return MemoTier::PerCo;
  }

  /// Memo volatility of fences: the fence relations are structural, so
  /// every shipped model returns Static; the conservative default remains
  /// per-candidate for exotic subclasses.
  virtual MemoTier fencesTier() const { return MemoTier::PerCo; }

  /// Memo volatility of prop for \p Exe (C++ R-A's (po | rf)+ is per-rf;
  /// the others read fr or com* and stay per-candidate).
  virtual MemoTier propTier(const Execution &Exe) const {
    (void)Exe;
    return MemoTier::PerCo;
  }

  /// Identity under which this model's per-candidate memo entries are
  /// stored. Models whose (ppo, fences, prop) triples are definitionally
  /// identical may return one shared tag so the relations are derived
  /// once for the whole group — e.g. ARM and ARM llh, which differ only
  /// in axiom style. Defaults to the instance address (no sharing).
  virtual const void *memoTag() const { return this; }

  /// happens-before: ppo | fences | rfe.
  Relation happensBefore(const Execution &Exe) const;

  /// Evaluates the four axioms on \p Exe. Virtual so adapters over other
  /// model formalisms (e.g. the cat interpreter) can substitute their own
  /// evaluation while staying usable wherever a Model is expected.
  virtual Verdict check(const Execution &Exe) const;

  /// True when \p Exe passes every axiom.
  bool allows(const Execution &Exe) const { return check(Exe).Allowed; }

  /// Provenance for a violation check() reported: the concrete evidence
  /// that \p A fails on \p Exe, as a minimal cycle (for the acyclicity
  /// axioms) or the fre; prop; hb* loop (for OBSERVATION), every edge
  /// labeled by the derived relation it came from. Returns a closed edge
  /// walk E0 -> E1 -> ... -> E0; empty when the axiom in fact holds.
  virtual std::vector<LabeledEdge> explainViolation(Axiom A,
                                                    const Execution &Exe) const;

  /// A string that changes whenever the model's *definition* changes, not
  /// just its name — hashed into the campaign result-cache key so model
  /// edits self-invalidate cached verdicts. Native models fold in their
  /// axiom style (the name covers the triple, which is fixed in code);
  /// configurable models must override to serialize their configuration,
  /// and .cat-backed models hash the source text.
  virtual std::string definitionFingerprint() const;

protected:
  /// Memoized wrappers around the architecture functions, shared by the
  /// axiom evaluation and the prop implementations so each relation is
  /// derived once per candidate (when the execution's derived cache is
  /// on; pass-through otherwise). Subclasses adding their own memoized
  /// relations must use slots >= MemoFirstSubclassSlot.
  Relation cachedPpo(const Execution &Exe) const;
  Relation cachedFences(const Execution &Exe) const;
  /// Combined memo tier of happens-before (max of ppo/fences tiers and
  /// PerRf for the rfe component).
  MemoTier hbTier(const Execution &Exe) const;
  Relation cachedHappensBefore(const Execution &Exe) const;
  /// Reflexive-transitive closure of happens-before.
  Relation cachedHbStar(const Execution &Exe) const;
  Relation cachedProp(const Execution &Exe) const;

  /// The po-loc relation as SC PER LOCATION sees it for this model's
  /// style: read-read pairs removed under the llh weakening.
  Relation scPerLocationPoLoc(const Execution &Exe) const;

  /// Labels each consecutive edge of \p Walk with the first relation in
  /// \p Sources containing it (shared by the explainViolation paths).
  static std::vector<LabeledEdge>
  labelWalk(const std::vector<EventId> &Walk,
            const std::vector<std::pair<std::string, const Relation *>>
                &Sources);

  /// The NO THIN AIR labeling sources for hb edges: rfe, each named fence
  /// relation restricted to the model's fences(), generic "fence", ppo.
  /// Returned relations are materialized into \p Storage so the pointers
  /// in the result stay valid.
  std::vector<std::pair<std::string, const Relation *>>
  hbEdgeSources(const Execution &Exe, std::vector<Relation> &Storage) const;

  enum : unsigned {
    MemoPpo = 0,
    MemoFences,
    MemoHb,
    MemoHbStar,
    MemoProp,
    MemoFirstSubclassSlot
  };
};

} // namespace cats

#endif // CATS_MODEL_MODEL_H
