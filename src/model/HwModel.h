//===- HwModel.h - Power and ARM instances (Figs. 17/18/25) ---*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weak hardware instances of the framework. A HwConfig captures the
/// per-architecture parameters of Sec. 6 and Table VII:
///
///  * which fence instructions are full fences, which are lightweight, and
///    which of those only order write-write pairs (eieio, dmb.st/dsb.st);
///  * whether cc0 includes po-loc (Power yes; the proposed ARM model drops
///    it to admit the early-commit behaviours of Fig. 32/33);
///  * whether SC PER LOCATION tolerates load-load hazards (the "ARM llh"
///    row of Table VII).
///
/// The preserved program order is the ii/ic/ci/cc least fixpoint of Fig. 25
/// and the propagation order follows Fig. 18:
///
///   prop-base = (fences | rfe;fences); hb*
///   prop      = (prop-base & WW) | (com*; prop-base*; ffence; hb*)
///
//===----------------------------------------------------------------------===//

#ifndef CATS_MODEL_HWMODEL_H
#define CATS_MODEL_HWMODEL_H

#include "model/Model.h"

#include <vector>

namespace cats {

/// Architecture parameters for the Power/ARM family.
struct HwConfig {
  std::string Name;
  /// Full fences (strong A-cumulativity), e.g. sync; dmb, dsb.
  std::vector<std::string> FullFences;
  /// Full fences restricted to write-write pairs (dmb.st, dsb.st under the
  /// "st fences are full fences limited to WW" reading of Sec. 4.7).
  std::vector<std::string> FullFencesWW;
  /// Lightweight fences ordering everything but write-read pairs (lwsync).
  std::vector<std::string> LightFencesNoWR;
  /// Lightweight fences ordering only write-write pairs (eieio).
  std::vector<std::string> LightFencesWW;
  /// Whether cc0 includes po-loc (Fig. 25 vs the ARM column of Tab. VII).
  bool Cc0IncludesPoLoc = true;
  /// Whether the rdw and detour "dynamic" edges take part in ppo
  /// (Sec. 8.2 discusses dropping them for a more static ppo).
  bool PpoUsesRdwDetour = true;
  /// SC PER LOCATION weakening for chips with read-after-read hazards.
  bool AllowLoadLoadHazard = false;
  /// Relative insertion costs of the architecture's fences, in the spirit
  /// of the paper's restoration discussion (Sec. 7): lightweight fences
  /// are cheaper than full ones (lwsync < sync, dmb.st < dmb), control
  /// fences cheapest. The repair subsystem ranks candidate insertions by
  /// these; fences absent from the table fall back to repair defaults.
  std::vector<std::pair<std::string, unsigned>> FenceCosts;

  /// The insertion cost of \p FenceName; 0 when not in the table.
  unsigned fenceCost(const std::string &FenceName) const;

  static HwConfig power();
  /// The proposed ARM model (cc0 without po-loc).
  static HwConfig arm();
  /// The Power model applied verbatim to ARM fences ("Power-ARM").
  static HwConfig powerArm();
  /// ARM plus the load-load-hazard weakening ("ARM llh").
  static HwConfig armLlh();
};

/// A model of the Power/ARM family, parameterised by HwConfig.
class HwModel : public Model {
public:
  explicit HwModel(HwConfig Config);

  std::string name() const override { return Config.Name; }
  Relation ppo(const Execution &Exe) const override;
  Relation fences(const Execution &Exe) const override;
  Relation prop(const Execution &Exe) const override;
  AxiomStyle style() const override {
    AxiomStyle S;
    S.AllowLoadLoadHazard = Config.AllowLoadLoadHazard;
    return S;
  }

  /// The Fig. 25 fixpoint reads rfi (per-rf) plus rdw and detour, the
  /// only co-dependent inputs. Both are intersections with po-loc, so on
  /// executions without same-location po pairs (every basic diy critical
  /// cycle) the fixpoint is per-rf and the enumerator reuses it across
  /// the whole coherence walk.
  MemoTier ppoTier(const Execution &Exe) const override {
    if (!Config.PpoUsesRdwDetour || Exe.poLoc().empty())
      return MemoTier::PerRf;
    return MemoTier::PerCo;
  }
  MemoTier fencesTier() const override { return MemoTier::Static; }

  /// The full-fence relation (strong half of prop).
  Relation fullFence(const Execution &Exe) const;

  /// The lightweight-fence relation.
  Relation lightFence(const Execution &Exe) const;

  const HwConfig &config() const { return Config; }

  /// Interned per-triple identity: two HwModels whose configs agree on
  /// everything that feeds ppo/fences/prop (fence classes, cc0, the
  /// rdw/detour switch — but not the llh axiom style or the display
  /// name) share one tag, so e.g. ARM llh reuses every relation ARM
  /// already derived for a candidate.
  const void *memoTag() const override { return MemoIdentity; }

  /// Serializes the full HwConfig (triple parameters + axiom style), so
  /// editing any architecture parameter invalidates cached campaign
  /// results for this model.
  std::string definitionFingerprint() const override;

private:
  enum : unsigned { MemoFullFence = MemoFirstSubclassSlot };

  HwConfig Config;
  const void *MemoIdentity;
};

} // namespace cats

#endif // CATS_MODEL_HWMODEL_H
