//===- Rng.h - Deterministic pseudo-random number generation --*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, seedable PRNG (SplitMix64 seeding a Xoshiro256**). The
/// simulated-hardware runner uses it for scheduling decisions, so determinism
/// under a fixed seed is required for reproducible tables.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_SUPPORT_RNG_H
#define CATS_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace cats {

/// Xoshiro256** seeded via SplitMix64. Deterministic for a given seed.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    uint64_t X = Seed;
    for (auto &Word : State) {
      // SplitMix64 step.
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow needs a nonzero bound");
    // Rejection-free multiply-shift reduction; slight bias is irrelevant for
    // scheduling purposes.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Fair-ish coin with probability \p Num / \p Den of returning true.
  bool chance(uint64_t Num, uint64_t Den) { return nextBelow(Den) < Num; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace cats

#endif // CATS_SUPPORT_RNG_H
