//===- StringUtils.cpp - Small string helpers -----------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

using namespace cats;

std::vector<std::string> cats::splitString(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  std::string Current;
  for (char C : Text) {
    if (C == Sep) {
      Parts.push_back(Current);
      Current.clear();
    } else {
      Current.push_back(C);
    }
  }
  Parts.push_back(Current);
  return Parts;
}

std::vector<std::string>
cats::splitTrimmedNonEmpty(const std::string &Text, char Sep) {
  std::vector<std::string> Out;
  for (const std::string &Field : splitString(Text, Sep)) {
    std::string Trimmed = trimString(Field);
    if (!Trimmed.empty())
      Out.push_back(std::move(Trimmed));
  }
  return Out;
}

std::vector<std::string> cats::splitWhitespace(const std::string &Text) {
  std::vector<std::string> Parts;
  std::string Current;
  for (char C : Text) {
    if (std::isspace(static_cast<unsigned char>(C))) {
      if (!Current.empty()) {
        Parts.push_back(Current);
        Current.clear();
      }
    } else {
      Current.push_back(C);
    }
  }
  if (!Current.empty())
    Parts.push_back(Current);
  return Parts;
}

std::string cats::trimString(const std::string &Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool cats::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

bool cats::endsWith(const std::string &Text, const std::string &Suffix) {
  return Text.size() >= Suffix.size() &&
         Text.compare(Text.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::string cats::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, ArgsCopy);
    Out.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Out;
}

std::string cats::joinStrings(const std::vector<std::string> &Parts,
                              const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string cats::padRight(const std::string &Text, unsigned Width) {
  if (Text.size() >= Width)
    return Text;
  return Text + std::string(Width - Text.size(), ' ');
}

std::string cats::padLeft(const std::string &Text, unsigned Width) {
  if (Text.size() >= Width)
    return Text;
  return std::string(Width - Text.size(), ' ') + Text;
}

bool cats::parseUnsignedArg(const char *Text, unsigned long long &Out) {
  // Reject everything strtoull would silently tolerate: leading
  // whitespace, signs, and out-of-range values (ERANGE saturation).
  if (!Text || !std::isdigit(static_cast<unsigned char>(*Text)))
    return false;
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Text, &End, 10);
  return End && *End == '\0' && errno != ERANGE;
}

bool cats::parseUnsignedArg(const char *Text, unsigned &Out) {
  unsigned long long Wide = 0;
  if (!parseUnsignedArg(Text, Wide) ||
      Wide > std::numeric_limits<unsigned>::max())
    return false;
  Out = static_cast<unsigned>(Wide);
  return true;
}
