//===- Error.h - Lightweight recoverable-error types ----------*- C++ -*-===//
//
// Part of the cats project: a C++ reimplementation of the "Herding cats"
// weak-memory framework (Alglave, Maranget, Tautschnig, 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal LLVM-flavoured error handling. Library code never throws across
/// its boundary; fallible operations return Expected<T> or Status, which the
/// caller must inspect.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_SUPPORT_ERROR_H
#define CATS_SUPPORT_ERROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace cats {

/// A success/failure outcome carrying a human-readable message on failure.
class Status {
public:
  /// Creates a success value.
  static Status success() { return Status(); }

  /// Creates a failure value with message \p Msg.
  static Status error(std::string Msg) {
    Status S;
    S.Message = std::move(Msg);
    S.Failed = true;
    return S;
  }

  /// True if this holds an error.
  bool failed() const { return Failed; }

  /// True if this is a success value.
  explicit operator bool() const { return !Failed; }

  /// The failure message; empty on success.
  const std::string &message() const { return Message; }

private:
  std::string Message;
  bool Failed = false;
};

/// Either a value of type T or an error message, in the spirit of
/// llvm::Expected. Construct from a T for success, or via Expected::error.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure with message \p Msg.
  static Expected error(std::string Msg) {
    Expected E;
    E.Message = std::move(Msg);
    return E;
  }

  /// True on success.
  explicit operator bool() const { return Value.has_value(); }

  /// Accesses the contained value; asserts on failure values.
  T &operator*() {
    assert(Value && "dereferencing an error Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing an error Expected");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing an error Expected");
    return &*Value;
  }
  const T *operator->() const {
    assert(Value && "dereferencing an error Expected");
    return &*Value;
  }

  /// Moves the contained value out; asserts on failure values.
  T take() {
    assert(Value && "taking from an error Expected");
    return std::move(*Value);
  }

  /// The failure message; empty on success.
  const std::string &message() const { return Message; }

private:
  Expected() = default;
  std::optional<T> Value;
  std::string Message;
};

} // namespace cats

#endif // CATS_SUPPORT_ERROR_H
