//===- StringUtils.h - Small string helpers -------------------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String splitting, trimming and formatting helpers shared by the parsers
/// and the table printers.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_SUPPORT_STRINGUTILS_H
#define CATS_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace cats {

/// Splits \p Text on character \p Sep; empty fields are kept.
std::vector<std::string> splitString(const std::string &Text, char Sep);

/// Splits on \p Sep, trims each field, and drops the empty ones — the
/// shape every comma-separated CLI list flag (--models A,B,C) wants.
std::vector<std::string> splitTrimmedNonEmpty(const std::string &Text,
                                              char Sep);

/// Splits \p Text on any whitespace; empty fields are dropped.
std::vector<std::string> splitWhitespace(const std::string &Text);

/// Removes leading and trailing whitespace.
std::string trimString(const std::string &Text);

/// True if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// True if \p Text ends with \p Suffix.
bool endsWith(const std::string &Text, const std::string &Suffix);

/// printf-style formatting into a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins \p Parts with separator \p Sep.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

/// Pads or truncates \p Text to exactly \p Width columns (left-aligned).
std::string padRight(const std::string &Text, unsigned Width);

/// Pads \p Text on the left to \p Width columns (right-aligned).
std::string padLeft(const std::string &Text, unsigned Width);

/// Parses the whole of \p Text as an unsigned decimal integer — no sign,
/// no whitespace, no trailing characters, and no overflow. The shared
/// flag-value parser of the CLIs.
bool parseUnsignedArg(const char *Text, unsigned long long &Out);

/// As above, additionally rejecting values that do not fit an unsigned.
bool parseUnsignedArg(const char *Text, unsigned &Out);

} // namespace cats

#endif // CATS_SUPPORT_STRINGUTILS_H
