//===- Bits.h - C++17 bit-manipulation helpers ----------------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// popcount / countr_zero with the C++20 <bit> semantics, usable from the
/// project's C++17 baseline. Delegates to <bit> when available, otherwise to
/// compiler builtins.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_SUPPORT_BITS_H
#define CATS_SUPPORT_BITS_H

#include <cstdint>

#if defined(__has_include)
#if __has_include(<version>)
#include <version>
#endif
#endif
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
#include <bit>
#endif

namespace cats {

/// Number of set bits in \p Word.
inline unsigned popcount(uint64_t Word) {
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
  return static_cast<unsigned>(std::popcount(Word));
#else
  return static_cast<unsigned>(__builtin_popcountll(Word));
#endif
}

/// Number of trailing zero bits in \p Word; 64 when \p Word is 0.
inline unsigned countrZero(uint64_t Word) {
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
  return static_cast<unsigned>(std::countr_zero(Word));
#else
  return Word == 0 ? 64u : static_cast<unsigned>(__builtin_ctzll(Word));
#endif
}

} // namespace cats

#endif // CATS_SUPPORT_BITS_H
