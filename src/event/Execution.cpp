//===- Execution.cpp - Candidate executions (E, po, rf, co) ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "event/Execution.h"

#include "obs/Metrics.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace cats;

std::string Event::toString(const std::vector<std::string> &LocNames) const {
  std::string LocName = Loc >= 0 && Loc < static_cast<int>(LocNames.size())
                            ? LocNames[Loc]
                            : strFormat("loc%d", Loc);
  char KindChar = isRead() ? 'R' : 'W';
  std::string Who = Thread == InitThread
                        ? std::string("init")
                        : strFormat("T%d", Thread);
  return strFormat("e%u[%s]: %c%s=%lld", Id, Who.c_str(), KindChar,
                   LocName.c_str(), static_cast<long long>(Val));
}

EventId Execution::addEvent(Event E) {
  E.Id = static_cast<EventId>(Events.size());
  Events.push_back(E);
  return E.Id;
}

Location Execution::internLocation(const std::string &Name) {
  auto It = LocationIds.find(Name);
  if (It != LocationIds.end())
    return It->second;
  Location Id = static_cast<Location>(LocationNames.size());
  LocationNames.push_back(Name);
  LocationIds.emplace(Name, Id);
  return Id;
}

void Execution::finalizeStructure(unsigned NumThreadsIn) {
  NumThreads = NumThreadsIn;
  unsigned N = numEvents();
  Po = Relation(N);
  Addr = Relation(N);
  Data = Relation(N);
  Ctrl = Relation(N);
  CtrlCfence = Relation(N);
  Rf = Relation(N);
  Co = Relation(N);

  // po: per-thread total order following insertion order.
  for (ThreadId T = 0; T < static_cast<ThreadId>(NumThreads); ++T) {
    std::vector<EventId> Thread = threadEvents(T);
    for (size_t I = 0; I < Thread.size(); ++I)
      for (size_t J = I + 1; J < Thread.size(); ++J)
        Po.set(Thread[I], Thread[J]);
  }
}

Relation Execution::fenceRelation(const std::string &Name) const {
  auto It = Fences.find(Name);
  if (It != Fences.end())
    return It->second;
  return Relation(numEvents());
}

EventSet Execution::reads() const {
  EventSet Out(numEvents());
  for (const Event &E : Events)
    if (E.isRead())
      Out.insert(E.Id);
  return Out;
}

EventSet Execution::writes() const {
  EventSet Out(numEvents());
  for (const Event &E : Events)
    if (E.isWrite())
      Out.insert(E.Id);
  return Out;
}

EventSet Execution::initWrites() const {
  EventSet Out(numEvents());
  for (const Event &E : Events)
    if (E.IsInit)
      Out.insert(E.Id);
  return Out;
}

EventSet Execution::memoryEvents() const { return EventSet::all(numEvents()); }

std::vector<EventId> Execution::threadEvents(ThreadId Thread) const {
  std::vector<EventId> Out;
  for (const Event &E : Events)
    if (E.Thread == Thread)
      Out.push_back(E.Id);
  return Out;
}

std::vector<EventId> Execution::writesTo(Location Loc) const {
  std::vector<EventId> Out;
  for (const Event &E : Events)
    if (E.isWrite() && E.Loc == Loc)
      Out.push_back(E.Id);
  return Out;
}

int Execution::initWriteOf(Location Loc) const {
  for (const Event &E : Events)
    if (E.IsInit && E.Loc == Loc)
      return static_cast<int>(E.Id);
  return -1;
}

namespace {

/// Memoizes \p Compute into \p Slot when \p Enabled; transparent otherwise.
template <typename ComputeFn>
Relation memoized(bool Enabled, std::optional<Relation> &Slot,
                  const ComputeFn &Compute) {
  if (Enabled && Slot)
    return *Slot;
  Relation R = Compute();
  if (Enabled)
    Slot = R;
  return R;
}

} // namespace

Relation Execution::poLoc() const {
  return memoized(DerivedCacheEnabled, Cache.PoLoc, [&] {
    Relation Out(numEvents());
    for (auto [From, To] : Po.pairs())
      if (Events[From].Loc == Events[To].Loc)
        Out.set(From, To);
    return Out;
  });
}

Relation Execution::fr() const {
  // fr = rf^-1 ; co : a read r is fr-before any write co-after the write it
  // reads from.
  return memoized(DerivedCacheEnabled, Cache.Fr,
                  [&] { return Rf.inverse().compose(Co); });
}

Relation Execution::com() const {
  return memoized(DerivedCacheEnabled, Cache.Com,
                  [&] { return Co | Rf | fr(); });
}

Relation Execution::internal(const Relation &R) const {
  Relation Out(numEvents());
  for (auto [From, To] : R.pairs()) {
    const Event &A = Events[From];
    const Event &B = Events[To];
    if (A.Thread != InitThread && A.Thread == B.Thread)
      Out.set(From, To);
  }
  return Out;
}

Relation Execution::external(const Relation &R) const {
  Relation Out(numEvents());
  for (auto [From, To] : R.pairs()) {
    const Event &A = Events[From];
    const Event &B = Events[To];
    if (A.Thread == InitThread || A.Thread != B.Thread)
      Out.set(From, To);
  }
  return Out;
}

Relation Execution::rfe() const {
  return memoized(DerivedCacheEnabled, Cache.Rfe,
                  [&] { return external(Rf); });
}

Relation Execution::coe() const {
  return memoized(DerivedCacheEnabled, Cache.Coe,
                  [&] { return external(Co); });
}

Relation Execution::fre() const {
  return memoized(DerivedCacheEnabled, Cache.Fre,
                  [&] { return external(fr()); });
}

Relation Execution::rdw() const {
  return memoized(DerivedCacheEnabled, Cache.Rdw,
                  [&] { return poLoc() & fre().compose(rfe()); });
}

Relation Execution::detour() const {
  return memoized(DerivedCacheEnabled, Cache.Detour,
                  [&] { return poLoc() & coe().compose(rfe()); });
}

Relation Execution::comStar() const {
  return memoized(DerivedCacheEnabled, Cache.ComStar,
                  [&] { return com().reflexiveTransitiveClosure(); });
}

Relation Execution::modelMemo(
    const void *Tag, unsigned Slot, MemoTier Tier,
    const std::function<Relation()> &Compute) const {
  if (!DerivedCacheEnabled)
    return Compute();
  // Static instrument handles: resolved once, then each tick is a sharded
  // relaxed add — cheap enough for this per-candidate path.
  static obs::Counter &Hits = obs::counter("memo.model_hits");
  static obs::Counter &Misses = obs::counter("memo.model_misses");
  for (const ModelCacheEntry &E : ModelCache)
    if (E.Tag == Tag && E.Slot == Slot) {
      if (obs::metricsEnabled())
        Hits.add(1);
      return E.Rel;
    }
  if (obs::metricsEnabled())
    Misses.add(1);
  Relation R = Compute();
  if (ModelCache.empty())
    ModelCache.reserve(48);
  ModelCache.push_back(ModelCacheEntry{Tag, Slot, Tier, R});
  return R;
}

void Execution::invalidateDerived(MemoTier Floor) const {
  if (Floor == MemoTier::Static) {
    Cache = DerivedCache();
    ModelCache.clear();
    return;
  }
  if (Floor == MemoTier::PerRf)
    Cache.Rfe.reset();
  // Co-dependent named slots go at either floor (a new rf also starts a
  // fresh co walk). rdw and detour are formally co-dependent, but both are
  // intersections with po-loc: when the memoized po-loc is empty they are
  // empty under every rf/co and can survive — the common case for the diy
  // critical-cycle corpora, where it keeps the hardware-model ppo fixpoint
  // per-rf instead of per-candidate.
  Cache.Fr.reset();
  Cache.Com.reset();
  Cache.Coe.reset();
  Cache.Fre.reset();
  Cache.ComStar.reset();
  if (!(Cache.PoLoc && Cache.PoLoc->empty())) {
    Cache.Rdw.reset();
    Cache.Detour.reset();
  }
  ModelCache.erase(std::remove_if(ModelCache.begin(), ModelCache.end(),
                                  [Floor](const ModelCacheEntry &E) {
                                    return E.Tier >= Floor;
                                  }),
                   ModelCache.end());
}

std::string Execution::toString() const {
  std::string Out;
  for (const Event &E : Events) {
    Out += E.toString(LocationNames);
    Out += "\n";
  }
  auto Dump = [&](const char *Name, const Relation &R) {
    if (R.empty())
      return;
    Out += Name;
    Out += ": ";
    Out += R.toString();
    Out += "\n";
  };
  Dump("po", Po);
  Dump("rf", Rf);
  Dump("co", Co);
  Dump("fr", fr());
  Dump("addr", Addr);
  Dump("data", Data);
  Dump("ctrl", Ctrl);
  Dump("ctrl+cfence", CtrlCfence);
  for (const auto &[Name, R] : Fences)
    Dump(Name.c_str(), R);
  return Out;
}
