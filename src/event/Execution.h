//===- Execution.h - Candidate executions (E, po, rf, co) -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A candidate execution in the sense of Sec. 3/4 of the paper: a set of
/// memory events E, the program order po, a read-from map rf and a coherence
/// order co, together with the architectural ingredient relations computed by
/// the instruction semantics (dependencies and fence relations).
///
/// From these the class derives the glossary relations of Tab. II: fr, com,
/// po-loc, and the internal/external splits rfi/rfe, coi/coe, fri/fre.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_EVENT_EXECUTION_H
#define CATS_EVENT_EXECUTION_H

#include "event/Event.h"
#include "relation/Relation.h"

#include <map>
#include <string>
#include <vector>

namespace cats {

/// Canonical fence names shared by the litmus layer, the native models and
/// the cat interpreter builtins.
namespace fence {
inline constexpr const char *Sync = "sync";
inline constexpr const char *LwSync = "lwsync";
inline constexpr const char *Eieio = "eieio";
inline constexpr const char *ISync = "isync";
inline constexpr const char *Dmb = "dmb";
inline constexpr const char *Dsb = "dsb";
inline constexpr const char *DmbSt = "dmb.st";
inline constexpr const char *DsbSt = "dsb.st";
inline constexpr const char *Isb = "isb";
inline constexpr const char *MFence = "mfence";
} // namespace fence

/// A candidate execution. The structural parts (events, po, dependencies,
/// fence relations) are fixed by the program; rf and co vary per candidate
/// and are filled in by the enumerator.
class Execution {
public:
  Execution() = default;

  /// Number of events (including initial writes).
  unsigned numEvents() const { return static_cast<unsigned>(Events.size()); }

  /// Number of program threads (initial writes belong to none).
  unsigned numThreads() const { return NumThreads; }

  /// Adds an event and returns its id. Events must be added thread by
  /// thread in program order; initial writes may be added at any point.
  EventId addEvent(Event E);

  /// Event accessor.
  const Event &event(EventId Id) const { return Events[Id]; }
  Event &event(EventId Id) { return Events[Id]; }
  const std::vector<Event> &events() const { return Events; }

  /// Location-name table (index -> name).
  std::vector<std::string> LocationNames;

  /// Registers a location name, returning its dense index.
  Location internLocation(const std::string &Name);

  /// Builds po from the thread/instruction structure of the events: total
  /// per-thread order following insertion order, no inter-thread pairs,
  /// and no pairs involving initial writes. Call once all events are added.
  void finalizeStructure(unsigned NumThreadsIn);

  //===--------------------------------------------------------------------===//
  // Structural relations (program-determined)
  //===--------------------------------------------------------------------===//

  /// Program order over memory events.
  Relation Po;

  /// Address dependencies (Fig. 22): read -> po-later memory access whose
  /// address data-flows from the read.
  Relation Addr;

  /// Data dependencies: read -> po-later write whose stored value data-flows
  /// from the read.
  Relation Data;

  /// Control dependencies: read -> po-later access after a branch whose
  /// condition data-flows from the read.
  Relation Ctrl;

  /// Control + control-fence dependencies (ctrl+isync / ctrl+isb).
  Relation CtrlCfence;

  /// Fence relations: for fence name F, the pairs (e1, e2) in po with an F
  /// instruction po-between them (footnote 2 of the paper: membership does
  /// not yet say whether the fence *orders* the pair).
  std::map<std::string, Relation> Fences;

  /// Looks up a fence relation; returns the empty relation if the program
  /// contains no such fence.
  Relation fenceRelation(const std::string &Name) const;

  //===--------------------------------------------------------------------===//
  // Data-flow relations (candidate-specific)
  //===--------------------------------------------------------------------===//

  /// Read-from: links each read to the write it takes its value from.
  Relation Rf;

  /// Coherence: total order per location over writes to that location.
  Relation Co;

  //===--------------------------------------------------------------------===//
  // Event-set views
  //===--------------------------------------------------------------------===//

  EventSet reads() const;
  EventSet writes() const;
  EventSet initWrites() const;
  EventSet memoryEvents() const;

  /// Events of thread \p Thread in program order.
  std::vector<EventId> threadEvents(ThreadId Thread) const;

  /// Writes to \p Loc (including the initial write), in insertion order.
  std::vector<EventId> writesTo(Location Loc) const;

  /// The initial write of \p Loc, or -1 if none was added.
  int initWriteOf(Location Loc) const;

  //===--------------------------------------------------------------------===//
  // Derived relations (Tab. II)
  //===--------------------------------------------------------------------===//

  /// Same-location pairs of po.
  Relation poLoc() const;

  /// From-read: r -> w1 when r reads from w0 and w0 co-precedes w1.
  Relation fr() const;

  /// Communications: co | rf | fr.
  Relation com() const;

  /// Internal (same-thread) / external (cross-thread) splits. Initial
  /// writes count as external to every thread, as in herd.
  Relation internal(const Relation &R) const;
  Relation external(const Relation &R) const;

  Relation rfi() const { return internal(Rf); }
  Relation rfe() const { return external(Rf); }
  Relation coi() const { return internal(Co); }
  Relation coe() const { return external(Co); }
  Relation fri() const { return internal(fr()); }
  Relation fre() const { return external(fr()); }

  /// Read-different-writes (Fig. 27): po-loc & (fre; rfe).
  Relation rdw() const;

  /// Detour (Fig. 28): po-loc & (coe; rfe).
  Relation detour() const;

  /// Pretty-prints the execution (events plus rf/co/fr pairs).
  std::string toString() const;

private:
  std::vector<Event> Events;
  unsigned NumThreads = 0;
  std::map<std::string, Location> LocationIds;
};

} // namespace cats

#endif // CATS_EVENT_EXECUTION_H
