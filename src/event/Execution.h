//===- Execution.h - Candidate executions (E, po, rf, co) -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A candidate execution in the sense of Sec. 3/4 of the paper: a set of
/// memory events E, the program order po, a read-from map rf and a coherence
/// order co, together with the architectural ingredient relations computed by
/// the instruction semantics (dependencies and fence relations).
///
/// From these the class derives the glossary relations of Tab. II: fr, com,
/// po-loc, and the internal/external splits rfi/rfe, coi/coe, fri/fre.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_EVENT_EXECUTION_H
#define CATS_EVENT_EXECUTION_H

#include "event/Event.h"
#include "relation/Relation.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cats {

/// How long a memoized derived relation stays valid while the incremental
/// enumerator mutates one scratch Execution in place (docs/enumeration.md).
/// Tiers are ordered by volatility: invalidating at a tier drops every
/// entry at that tier or above and keeps the cheaper ones.
enum class MemoTier : unsigned char {
  /// Depends only on the program structure (events, po, dependencies,
  /// fences): valid across every rf/co assignment of the same test.
  Static = 0,
  /// Depends on rf but not co (e.g. rfe, the C++RA prop): valid while the
  /// enumerator walks the coherence orders under one fixed rf.
  PerRf = 1,
  /// Depends on co (fr, com, the Power/ARM prop): valid for one candidate.
  PerCo = 2,
};

/// Canonical fence names shared by the litmus layer, the native models and
/// the cat interpreter builtins.
namespace fence {
inline constexpr const char *Sync = "sync";
inline constexpr const char *LwSync = "lwsync";
inline constexpr const char *Eieio = "eieio";
inline constexpr const char *ISync = "isync";
inline constexpr const char *Dmb = "dmb";
inline constexpr const char *Dsb = "dsb";
inline constexpr const char *DmbSt = "dmb.st";
inline constexpr const char *DsbSt = "dsb.st";
inline constexpr const char *Isb = "isb";
inline constexpr const char *MFence = "mfence";
} // namespace fence

/// A candidate execution. The structural parts (events, po, dependencies,
/// fence relations) are fixed by the program; rf and co vary per candidate
/// and are filled in by the enumerator.
class Execution {
public:
  Execution() = default;

  /// Number of events (including initial writes).
  unsigned numEvents() const { return static_cast<unsigned>(Events.size()); }

  /// Number of program threads (initial writes belong to none).
  unsigned numThreads() const { return NumThreads; }

  /// Adds an event and returns its id. Events must be added thread by
  /// thread in program order; initial writes may be added at any point.
  EventId addEvent(Event E);

  /// Event accessor.
  const Event &event(EventId Id) const { return Events[Id]; }
  Event &event(EventId Id) { return Events[Id]; }
  const std::vector<Event> &events() const { return Events; }

  /// Location-name table (index -> name).
  std::vector<std::string> LocationNames;

  /// Registers a location name, returning its dense index.
  Location internLocation(const std::string &Name);

  /// Builds po from the thread/instruction structure of the events: total
  /// per-thread order following insertion order, no inter-thread pairs,
  /// and no pairs involving initial writes. Call once all events are added.
  void finalizeStructure(unsigned NumThreadsIn);

  //===--------------------------------------------------------------------===//
  // Structural relations (program-determined)
  //===--------------------------------------------------------------------===//

  /// Program order over memory events.
  Relation Po;

  /// Address dependencies (Fig. 22): read -> po-later memory access whose
  /// address data-flows from the read.
  Relation Addr;

  /// Data dependencies: read -> po-later write whose stored value data-flows
  /// from the read.
  Relation Data;

  /// Control dependencies: read -> po-later access after a branch whose
  /// condition data-flows from the read.
  Relation Ctrl;

  /// Control + control-fence dependencies (ctrl+isync / ctrl+isb).
  Relation CtrlCfence;

  /// Fence relations: for fence name F, the pairs (e1, e2) in po with an F
  /// instruction po-between them (footnote 2 of the paper: membership does
  /// not yet say whether the fence *orders* the pair).
  std::map<std::string, Relation> Fences;

  /// Looks up a fence relation; returns the empty relation if the program
  /// contains no such fence.
  Relation fenceRelation(const std::string &Name) const;

  //===--------------------------------------------------------------------===//
  // Data-flow relations (candidate-specific)
  //===--------------------------------------------------------------------===//

  /// Read-from: links each read to the write it takes its value from.
  Relation Rf;

  /// Coherence: total order per location over writes to that location.
  Relation Co;

  //===--------------------------------------------------------------------===//
  // Event-set views
  //===--------------------------------------------------------------------===//

  EventSet reads() const;
  EventSet writes() const;
  EventSet initWrites() const;
  EventSet memoryEvents() const;

  /// Events of thread \p Thread in program order.
  std::vector<EventId> threadEvents(ThreadId Thread) const;

  /// Writes to \p Loc (including the initial write), in insertion order.
  std::vector<EventId> writesTo(Location Loc) const;

  /// The initial write of \p Loc, or -1 if none was added.
  int initWriteOf(Location Loc) const;

  //===--------------------------------------------------------------------===//
  // Derived relations (Tab. II)
  //===--------------------------------------------------------------------===//

  /// Same-location pairs of po.
  Relation poLoc() const;

  /// From-read: r -> w1 when r reads from w0 and w0 co-precedes w1.
  Relation fr() const;

  /// Communications: co | rf | fr.
  Relation com() const;

  /// Internal (same-thread) / external (cross-thread) splits. Initial
  /// writes count as external to every thread, as in herd.
  Relation internal(const Relation &R) const;
  Relation external(const Relation &R) const;

  Relation rfi() const { return internal(Rf); }
  Relation rfe() const;
  Relation coi() const { return internal(Co); }
  Relation coe() const;
  Relation fri() const { return internal(fr()); }
  Relation fre() const;

  /// Read-different-writes (Fig. 27): po-loc & (fre; rfe).
  Relation rdw() const;

  /// Detour (Fig. 28): po-loc & (coe; rfe).
  Relation detour() const;

  /// Reflexive-transitive closure of com (memoized like the relations
  /// above; used by the Power/ARM prop).
  Relation comStar() const;

  /// Pretty-prints the execution (events plus rf/co/fr pairs).
  std::string toString() const;

  //===--------------------------------------------------------------------===//
  // Derived-relation memoization (opt-in)
  //===--------------------------------------------------------------------===//

  /// Enables memoization of the derived relations above (po-loc, fr, com,
  /// the rf/co/fr splits, rdw, detour). Only call once the execution is
  /// final: the cache is never invalidated, so mutating Po/Rf/Co/... after
  /// enabling returns stale derived relations.
  ///
  /// The multi-model checker opts candidates in before judging them, so
  /// when N models are checked against one candidate the shared relations
  /// are computed once instead of once per model. Executions that never
  /// opt in behave exactly as before (no caching).
  void enableDerivedCache() const { DerivedCacheEnabled = true; }

  /// Model-tagged memoization under the same opt-in: caches the result of
  /// \p Compute per (Tag, Slot), where Tag identifies the model instance
  /// and Slot the relation being derived. Model::check and the model
  /// implementations use this so e.g. the Power ppo fixpoint runs once per
  /// candidate even though both the axioms and prop need it. Transparent
  /// (no caching) while the derived cache is disabled.
  ///
  /// \p Tier declares when the entry goes stale (see invalidateDerived);
  /// the tier-less overload assumes the most volatile tier (per-candidate),
  /// which is always safe.
  Relation modelMemo(const void *Tag, unsigned Slot, MemoTier Tier,
                     const std::function<Relation()> &Compute) const;
  Relation modelMemo(const void *Tag, unsigned Slot,
                     const std::function<Relation()> &Compute) const {
    return modelMemo(Tag, Slot, MemoTier::PerCo, Compute);
  }

  /// Drops every cached derived relation and model-memo entry at \p Floor
  /// or a more volatile tier; entries below the floor survive. The
  /// incremental enumerator calls this after mutating Rf (PerRf floor) or
  /// Co (PerCo floor) on its scratch execution, so the program-structural
  /// work (po-loc, static ppo/fences) is paid once per test while the
  /// candidate-specific relations are recomputed exactly when needed.
  void invalidateDerived(MemoTier Floor) const;

private:
  std::vector<Event> Events;
  unsigned NumThreads = 0;
  std::map<std::string, Location> LocationIds;

  /// Lazily-filled memo slots, live only when DerivedCacheEnabled. Copies
  /// of the execution carry the cache along (same relations, still valid).
  struct DerivedCache {
    std::optional<Relation> PoLoc, Fr, Com, Rfe, Coe, Fre, Rdw, Detour,
        ComStar;
  };
  mutable DerivedCache Cache;
  /// Flat store for modelMemo: a handful of (tag, slot) entries per
  /// candidate, where a linear scan beats a node-based map.
  struct ModelCacheEntry {
    const void *Tag;
    unsigned Slot;
    MemoTier Tier;
    Relation Rel;
  };
  mutable std::vector<ModelCacheEntry> ModelCache;
  mutable bool DerivedCacheEnabled = false;
};

} // namespace cats

#endif // CATS_EVENT_EXECUTION_H
