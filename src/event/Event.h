//===- Event.h - Memory events of a candidate execution -------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory events in the single-event style of the paper (Sec. 4.1): one
/// write event per store instruction regardless of how many threads observe
/// it, and one read event per load. Register/branch micro-events and iico
/// live in the litmus layer (Sec. 5); by the time an Execution is built they
/// have been compiled away into the dependency relations.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_EVENT_EVENT_H
#define CATS_EVENT_EVENT_H

#include "relation/Relation.h"

#include <string>

namespace cats {

/// Thread identifier; InitThread marks the fictitious initial-state writes.
using ThreadId = int;
constexpr ThreadId InitThread = -1;

/// Memory location index. Locations are named at the litmus level ("x",
/// "y", ...) and densely numbered here.
using Location = int;

/// Values stored and read. Litmus tests use small non-negative integers.
using Value = int64_t;

/// Kind of a memory event.
enum class EventKind : uint8_t {
  Read, ///< A load from memory, Rx=v.
  Write ///< A store to memory, Wx=v (including the initial writes).
};

/// One memory event of a candidate execution.
struct Event {
  EventId Id = 0;
  ThreadId Thread = InitThread;
  /// Index of the originating instruction in its thread, for diagnostics;
  /// -1 for initial writes.
  int InstrIndex = -1;
  EventKind Kind = EventKind::Write;
  Location Loc = -1;
  /// For writes: the stored value. For reads: the value read, meaningful
  /// only once an rf edge has been chosen.
  Value Val = 0;
  /// True for the fictitious initial write of a location (co-minimal).
  bool IsInit = false;

  bool isRead() const { return Kind == EventKind::Read; }
  bool isWrite() const { return Kind == EventKind::Write; }

  /// Renders as e.g. "a: Wx=1" using the paper's convention. \p LocNames
  /// maps location indices to names.
  std::string toString(const std::vector<std::string> &LocNames) const;
};

} // namespace cats

#endif // CATS_EVENT_EVENT_H
