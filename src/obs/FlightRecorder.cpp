//===- FlightRecorder.cpp - Violation crash dumps -------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace cats;
using namespace cats::obs;

namespace fs = std::filesystem;

std::string FlightRecorder::defaultDir() {
  if (const char *Env = std::getenv("CATS_FLIGHT_DIR"))
    if (*Env)
      return Env;
  return "cats-flight-records";
}

namespace {

/// Keeps incident slugs path-safe; anything exotic becomes '_'.
std::string sanitizeSlug(const std::string &Incident) {
  std::string Out;
  for (char C : Incident.empty() ? std::string("incident") : Incident)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
            C == '_' || C == '.')
               ? C
               : '_';
  return Out;
}

bool writeFile(const fs::path &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << Text;
  return static_cast<bool>(Out);
}

} // namespace

Expected<std::string>
FlightRecorder::record(const std::string &Incident,
                       const std::string &TestSource,
                       const std::string &Summary,
                       const std::vector<Witness> &Witnesses) const {
  if (!enabled())
    return std::string();

  std::error_code EC;
  fs::create_directories(Root, EC);
  if (EC)
    return Expected<std::string>::error("flight recorder: cannot create " +
                                        Root + ": " + EC.message());

  const std::string Slug = sanitizeSlug(Incident);
  fs::path Dir;
  for (unsigned N = 1;; ++N) {
    Dir = fs::path(Root) / (Slug + "-" + std::to_string(N));
    if (!fs::exists(Dir, EC))
      break;
    if (N == 10000)
      return Expected<std::string>::error(
          "flight recorder: too many incidents under " + Root);
  }
  fs::create_directories(Dir, EC);
  if (EC)
    return Expected<std::string>::error("flight recorder: cannot create " +
                                        Dir.string() + ": " + EC.message());

  bool Ok = writeFile(Dir / "summary.txt", Summary);
  if (!TestSource.empty())
    Ok = writeFile(Dir / "test.litmus", TestSource) && Ok;
  Ok = writeFile(Dir / "witnesses.json",
                 witnessSectionToJson(Witnesses).dump() + "\n") &&
       Ok;
  for (const Witness &W : Witnesses)
    Ok = writeFile(Dir / ("witness-" + witnessFileStem(W) + ".dot"),
                   witnessToDot(W)) &&
         Ok;
  if (!Ok)
    return Expected<std::string>::error(
        "flight recorder: write failed under " + Dir.string());
  return Dir.string();
}
