//===- Progress.h - Campaign progress reporting to stderr -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The --progress reporter: a rate-limited stderr line with tests/s,
/// completion percentage, ETA (when the total is known) and the cache hit
/// rate (when a result cache is attached). Tools hook update() into
/// SweepEngine::runStreamed's StreamHooks::OnBatch (or their own per-test
/// loops), so week-long sharded campaigns finally show their pulse.
///
/// Everything goes to stderr — stdout stays reserved for --json reports
/// and the summary tables — and a disabled reporter (the default, or under
/// --quiet) is a no-op. On a TTY the line redraws in place via '\r'; when
/// stderr is redirected it degrades to one full line every few seconds so
/// logs stay readable.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_OBS_PROGRESS_H
#define CATS_OBS_PROGRESS_H

#include <string>

namespace cats {
namespace obs {

class ProgressReporter {
public:
  /// \p Label prefixes every line (conventionally the tool name);
  /// \p Total is the expected number of items, 0 when unknown (streamed
  /// sources); a disabled reporter never prints.
  ProgressReporter(std::string Label, unsigned long long Total,
                   bool Enabled);
  ~ProgressReporter();

  /// Reports \p Done items processed so far; prints at most every
  /// interval. Cache counts feed the hit-rate column; pass zeros when no
  /// cache is attached.
  void update(unsigned long long Done, unsigned long long CacheHits = 0,
              unsigned long long CacheMisses = 0);

  /// Prints the final summary line (idempotent; also run by the
  /// destructor so early returns still close the display).
  void finish();

  bool enabled() const { return Enabled; }

private:
  void print(unsigned long long Done, unsigned long long CacheHits,
             unsigned long long CacheMisses, bool Final);

  std::string Label;
  unsigned long long Total;
  bool Enabled;
  bool Tty = false;
  bool Printed = false;
  bool Finished = false;
  double StartSeconds = 0;
  double LastSeconds = 0;
  unsigned long long LastDone = 0;
  unsigned long long LastHits = 0;
  unsigned long long LastMisses = 0;
};

} // namespace obs
} // namespace cats

#endif // CATS_OBS_PROGRESS_H
