//===- Progress.cpp - Campaign progress reporting to stderr ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "obs/Progress.h"

#include <chrono>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace cats;
using namespace cats::obs;

namespace {

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool stderrIsTty() {
#if defined(__unix__) || defined(__APPLE__)
  return isatty(fileno(stderr)) != 0;
#else
  return false;
#endif
}

/// Redraw every 0.25s on a TTY; one line every 2s when redirected.
constexpr double TtyInterval = 0.25;
constexpr double PipeInterval = 2.0;

} // namespace

ProgressReporter::ProgressReporter(std::string LabelIn,
                                   unsigned long long TotalIn, bool EnabledIn)
    : Label(std::move(LabelIn)), Total(TotalIn), Enabled(EnabledIn),
      Tty(stderrIsTty()), StartSeconds(nowSeconds()),
      LastSeconds(StartSeconds) {}

ProgressReporter::~ProgressReporter() { finish(); }

void ProgressReporter::update(unsigned long long Done,
                              unsigned long long CacheHits,
                              unsigned long long CacheMisses) {
  if (!Enabled || Finished)
    return;
  LastDone = Done;
  LastHits = CacheHits;
  LastMisses = CacheMisses;
  const double Now = nowSeconds();
  const double Interval = Tty ? TtyInterval : PipeInterval;
  if (Printed && Now - LastSeconds < Interval)
    return;
  LastSeconds = Now;
  print(Done, CacheHits, CacheMisses, /*Final=*/false);
}

void ProgressReporter::finish() {
  if (!Enabled || Finished)
    return;
  Finished = true;
  if (!Printed && LastDone == 0)
    return; // never had anything to say
  print(LastDone, LastHits, LastMisses, /*Final=*/true);
}

void ProgressReporter::print(unsigned long long Done,
                             unsigned long long CacheHits,
                             unsigned long long CacheMisses, bool Final) {
  Printed = true;
  const double Elapsed = nowSeconds() - StartSeconds;
  const double Rate = Elapsed > 0 ? static_cast<double>(Done) / Elapsed : 0;

  std::string Line = Label + ": " + std::to_string(Done);
  if (Total) {
    const double Pct =
        100.0 * static_cast<double>(Done) / static_cast<double>(Total);
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "/%llu (%.1f%%)", Total, Pct);
    Line += Buf;
  }
  {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), " %.1f tests/s", Rate);
    Line += Buf;
  }
  if (Total && Rate > 0 && Done < Total) {
    const double Eta = static_cast<double>(Total - Done) / Rate;
    char Buf[64];
    if (Eta >= 3600)
      std::snprintf(Buf, sizeof(Buf), " ETA %.1fh", Eta / 3600);
    else if (Eta >= 60)
      std::snprintf(Buf, sizeof(Buf), " ETA %.1fm", Eta / 60);
    else
      std::snprintf(Buf, sizeof(Buf), " ETA %.0fs", Eta);
    Line += Buf;
  }
  if (CacheHits + CacheMisses) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), " cache %.0f%% hit",
                  100.0 * static_cast<double>(CacheHits) /
                      static_cast<double>(CacheHits + CacheMisses));
    Line += Buf;
  }
  if (Final) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), " in %.1fs", Elapsed);
    Line += Buf;
  }

  if (Tty && !Final) {
    std::fprintf(stderr, "\r\033[K%s", Line.c_str());
  } else if (Tty) {
    std::fprintf(stderr, "\r\033[K%s\n", Line.c_str());
  } else {
    std::fprintf(stderr, "%s\n", Line.c_str());
  }
  std::fflush(stderr);
}
