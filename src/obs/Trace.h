//===- Trace.h - RAII spans flushed as Chrome trace events ----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability subsystem: scoped Span objects
/// append begin/end ("B"/"E") events to a per-thread buffer, and the whole
/// process flushes as one Chrome trace-event JSON document that loads in
/// Perfetto or chrome://tracing (docs/observability.md shows the schema
/// and a loading walkthrough).
///
/// Spans cover coarse phases — sweep batches and jobs, compile/judge
/// splits, repair lattice rounds, run-harness phases, diy enumeration —
/// never per-candidate work, so the cost of an enabled trace is a handful
/// of events per test. When tracing is disabled (the default) constructing
/// a Span is one relaxed bool load.
///
/// Buffers are owned by a global registry (threads register on first use
/// and their events outlive them), so flushing after the worker pools have
/// joined sees every event; RAII guarantees B/E balance per thread.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_OBS_TRACE_H
#define CATS_OBS_TRACE_H

#include "sweep/Json.h"

#include <string>

namespace cats {
namespace obs {

/// Global tracing switch; relaxed load, false by default.
bool traceEnabled();
void setTraceEnabled(bool Enabled);

/// Discards every buffered event (tests; threads stay registered).
void resetTrace();

/// A traced scope. Emits a "B" event at construction and the matching "E"
/// at destruction into the calling thread's buffer; does nothing when
/// tracing is off at construction time.
class Span {
public:
  explicit Span(std::string Name);
  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  bool Active;
  std::string Name;
};

/// All buffered events as a Chrome trace-event document:
///
///   {"traceEvents": [{"name": ..., "cat": "cats", "ph": "B"|"E",
///                     "ts": <microseconds>, "pid": 1, "tid": N}, ...],
///    "displayTimeUnit": "ms"}
///
/// Events are ordered per thread (tid) in emission order; timestamps are
/// microseconds from the first instrumented instant of the process.
JsonValue traceToJson();

/// Writes traceToJson() to \p Path; returns false and fills \p Error on
/// I/O failure.
bool writeTrace(const std::string &Path, std::string &Error);

} // namespace obs
} // namespace cats

#endif // CATS_OBS_TRACE_H
