//===- Metrics.cpp - Sharded counters and histograms ----------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "support/StringUtils.h"

#include <map>
#include <memory>
#include <mutex>

using namespace cats;
using namespace cats::obs;

namespace {

std::atomic<bool> Enabled{false};

/// Name -> instrument maps. std::map keeps the JSON dumps sorted and the
/// node-based storage keeps instrument addresses stable across inserts.
/// The registry mutex only guards lookup/creation — never the hot add().
struct RegistryState {
  std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

RegistryState &registry() {
  static RegistryState State;
  return State;
}

} // namespace

bool obs::metricsEnabled() {
  return Enabled.load(std::memory_order_relaxed);
}

void obs::setMetricsEnabled(bool E) {
  Enabled.store(E, std::memory_order_relaxed);
}

unsigned Counter::shardIndex() {
  static std::atomic<unsigned> NextThread{0};
  thread_local unsigned Index =
      NextThread.fetch_add(1, std::memory_order_relaxed) % NumShards;
  return Index;
}

Counter &obs::counter(const std::string &Name) {
  RegistryState &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto &Slot = R.Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Histogram &obs::histogram(const std::string &Name) {
  RegistryState &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto &Slot = R.Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

void obs::resetMetrics() {
  RegistryState &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, C] : R.Counters)
    C->reset();
  for (auto &[Name, H] : R.Histograms)
    H->reset();
}

JsonValue obs::metricsToJson() {
  RegistryState &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-metrics/1");
  JsonValue Counters = JsonValue::object();
  for (const auto &[Name, C] : R.Counters)
    if (unsigned long long V = C->value())
      Counters.set(Name, V);
  Root.set("counters", std::move(Counters));
  JsonValue Histograms = JsonValue::object();
  for (const auto &[Name, H] : R.Histograms) {
    if (H->count() == 0)
      continue;
    JsonValue Hist = JsonValue::object();
    Hist.set("count", H->count());
    Hist.set("sum", H->sum());
    JsonValue Buckets = JsonValue::array();
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B) {
      if (unsigned long long N = H->bucket(B)) {
        JsonValue Pair = JsonValue::array();
        Pair.push(B);
        Pair.push(N);
        Buckets.push(std::move(Pair));
      }
    }
    Hist.set("buckets", std::move(Buckets));
    Histograms.set(Name, std::move(Hist));
  }
  Root.set("histograms", std::move(Histograms));
  return Root;
}

namespace {

bool wrongShape(const JsonValue &Doc, std::string &Error) {
  const JsonValue *Schema = Doc.get("schema");
  if (!Doc.isObject() || !Schema || !Schema->isString() ||
      Schema->asString() != "cats-metrics/1") {
    Error = "not a cats-metrics/1 object";
    return true;
  }
  return false;
}

unsigned long long numberOf(const JsonValue *V) {
  return V && V->isNumber() ? static_cast<unsigned long long>(V->asNumber())
                            : 0;
}

} // namespace

bool obs::mergeMetricsJson(JsonValue &Into, const JsonValue &From,
                           std::string &Error) {
  if (wrongShape(Into, Error) || wrongShape(From, Error))
    return false;

  // Counters: plain sums. Rebuild the object so merged keys stay sorted
  // regardless of the insertion order of the inputs.
  std::map<std::string, unsigned long long> Counters;
  for (const JsonValue *Doc :
       {static_cast<const JsonValue *>(&Into), &From})
    if (const JsonValue *C = Doc->get("counters")) {
      if (!C->isObject()) {
        Error = "'counters' is not an object";
        return false;
      }
      for (const auto &[Name, V] : C->members())
        Counters[Name] += numberOf(&V);
    }

  // Histograms: count/sum add, buckets merge by index.
  struct Hist {
    unsigned long long Count = 0, Sum = 0;
    std::map<unsigned long long, unsigned long long> Buckets;
  };
  std::map<std::string, Hist> Histograms;
  for (const JsonValue *Doc :
       {static_cast<const JsonValue *>(&Into), &From})
    if (const JsonValue *Hs = Doc->get("histograms")) {
      if (!Hs->isObject()) {
        Error = "'histograms' is not an object";
        return false;
      }
      for (const auto &[Name, V] : Hs->members()) {
        if (!V.isObject()) {
          Error = strFormat("histogram '%s' is not an object", Name.c_str());
          return false;
        }
        Hist &H = Histograms[Name];
        H.Count += numberOf(V.get("count"));
        H.Sum += numberOf(V.get("sum"));
        if (const JsonValue *Buckets = V.get("buckets")) {
          if (!Buckets->isArray()) {
            Error = strFormat("histogram '%s' buckets is not an array",
                              Name.c_str());
            return false;
          }
          for (const JsonValue &Pair : Buckets->elements()) {
            if (!Pair.isArray() || Pair.elements().size() != 2) {
              Error = strFormat("histogram '%s' has a malformed bucket",
                                Name.c_str());
              return false;
            }
            H.Buckets[numberOf(&Pair.elements()[0])] +=
                numberOf(&Pair.elements()[1]);
          }
        }
      }
    }

  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-metrics/1");
  JsonValue OutCounters = JsonValue::object();
  for (const auto &[Name, V] : Counters)
    if (V)
      OutCounters.set(Name, V);
  Root.set("counters", std::move(OutCounters));
  JsonValue OutHistograms = JsonValue::object();
  for (const auto &[Name, H] : Histograms) {
    if (H.Count == 0)
      continue;
    JsonValue Hist = JsonValue::object();
    Hist.set("count", H.Count);
    Hist.set("sum", H.Sum);
    JsonValue Buckets = JsonValue::array();
    for (const auto &[B, N] : H.Buckets) {
      if (!N)
        continue;
      JsonValue Pair = JsonValue::array();
      Pair.push(B);
      Pair.push(N);
      Buckets.push(std::move(Pair));
    }
    Hist.set("buckets", std::move(Buckets));
    OutHistograms.set(Name, std::move(Hist));
  }
  Root.set("histograms", std::move(OutHistograms));
  Into = std::move(Root);
  return true;
}

std::string obs::metricsToText() {
  RegistryState &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::string Out;
  for (const auto &[Name, C] : R.Counters)
    if (unsigned long long V = C->value())
      Out += strFormat("%-44s %12llu\n", Name.c_str(), V);
  for (const auto &[Name, H] : R.Histograms) {
    unsigned long long Count = H->count();
    if (!Count)
      continue;
    Out += strFormat("%-44s %12llu  sum %llu  mean %.1f\n", Name.c_str(),
                     Count, H->sum(),
                     static_cast<double>(H->sum()) /
                         static_cast<double>(Count));
  }
  return Out;
}
