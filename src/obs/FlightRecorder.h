//===- FlightRecorder.h - Violation crash dumps ---------------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The violation flight recorder (docs/explain.md). When a soundness
/// oracle trips — a hardware run produces an outcome the reference model
/// forbids, or two judging backends disagree — the interesting state is
/// gone by the time anyone looks. The flight recorder freezes it on the
/// spot: each incident becomes a fresh directory under the recorder root
/// holding the litmus source, a human-readable summary, the witness JSON
/// section, and one DOT graph per witness.
///
/// The root directory defaults to $CATS_FLIGHT_DIR (falling back to
/// "cats-flight-records" in the working directory) and is created lazily
/// on the first incident, so an armed recorder that never fires leaves no
/// trace on disk.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_OBS_FLIGHTRECORDER_H
#define CATS_OBS_FLIGHTRECORDER_H

#include "obs/Witness.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace cats {
namespace obs {

/// Dumps witness evidence for soundness incidents into per-incident
/// directories. Copyable value type; all state is the root path.
class FlightRecorder {
public:
  /// An armed recorder rooted at \p Dir; empty \p Dir disarms it (record()
  /// becomes a no-op reporting success with an empty path).
  explicit FlightRecorder(std::string Dir = defaultDir())
      : Root(std::move(Dir)) {}

  /// A disarmed recorder.
  static FlightRecorder disabled() { return FlightRecorder(std::string()); }

  /// $CATS_FLIGHT_DIR, or "cats-flight-records" when unset.
  static std::string defaultDir();

  bool enabled() const { return !Root.empty(); }
  const std::string &rootDir() const { return Root; }

  /// Records one incident: creates Root/<incident>-<N> (N = first free
  /// index) containing test.litmus (when \p TestSource is nonempty),
  /// summary.txt, witnesses.json, and witness-<stem>.dot per witness.
  /// Returns the incident directory, or an empty string when disarmed.
  Expected<std::string> record(const std::string &Incident,
                               const std::string &TestSource,
                               const std::string &Summary,
                               const std::vector<Witness> &Witnesses) const;

private:
  std::string Root;
};

} // namespace obs
} // namespace cats

#endif // CATS_OBS_FLIGHTRECORDER_H
