//===- Metrics.h - Sharded counters and histograms ------------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability subsystem (docs/observability.md):
/// a process-global registry of named counters and power-of-two histograms,
/// cheap enough to leave on inside the MultiModelChecker inner loop and
/// near-zero-cost when disabled.
///
/// Two usage patterns keep the hot paths fast:
///
///  - Sharded atomics. Counter::add spreads increments over cache-line-
///    padded per-thread shards, so concurrent sweep workers never contend
///    on one line. Engines that tick a counter per candidate instead
///    accumulate in plain locals and flush once per test (see
///    MultiModelChecker::take), which costs nothing at all per candidate.
///
///  - One global switch. Everything gates on metricsEnabled(), a relaxed
///    atomic bool; when it is off (the default) the instrumented code does
///    a single predictable-branch load and nothing else.
///
/// Snapshots serialize as the additive cats-metrics/1 JSON object that the
/// CLIs embed in their reports and dump via --metrics[=FILE]; shard reports
/// merge by summing counters and bucket-wise adding histograms.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_OBS_METRICS_H
#define CATS_OBS_METRICS_H

#include "sweep/Json.h"

#include <atomic>
#include <string>

namespace cats {
namespace obs {

/// Global metrics switch; relaxed load, false by default.
bool metricsEnabled();
void setMetricsEnabled(bool Enabled);

/// A monotonically increasing counter sharded over cache-line-padded
/// atomics. add() is wait-free and contention-free across threads; value()
/// sums the shards (reads are for reporting, not coordination).
class Counter {
public:
  static constexpr unsigned NumShards = 16;

  void add(unsigned long long N = 1) {
    Shards[shardIndex()].N.fetch_add(N, std::memory_order_relaxed);
  }

  unsigned long long value() const {
    unsigned long long Total = 0;
    for (const Shard &S : Shards)
      Total += S.N.load(std::memory_order_relaxed);
    return Total;
  }

  void reset() {
    for (Shard &S : Shards)
      S.N.store(0, std::memory_order_relaxed);
  }

private:
  struct alignas(64) Shard {
    std::atomic<unsigned long long> N{0};
  };
  Shard Shards[NumShards];

  /// Stable per-thread shard assignment (round-robin over thread starts).
  static unsigned shardIndex();
};

/// A histogram over power-of-two buckets: record(V) lands in bucket
/// bit_width(V), i.e. bucket B counts values in [2^(B-1), 2^B) with bucket
/// 0 reserved for zero. Good enough for latency (microseconds) and size
/// distributions without any configuration, and mergeable bucket-wise.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void record(unsigned long long V) {
    unsigned B = 0;
    for (unsigned long long X = V; X; X >>= 1)
      ++B;
    Buckets[B].fetch_add(1, std::memory_order_relaxed);
    Total.fetch_add(V, std::memory_order_relaxed);
  }

  unsigned long long count() const {
    unsigned long long N = 0;
    for (const auto &B : Buckets)
      N += B.load(std::memory_order_relaxed);
    return N;
  }

  unsigned long long sum() const {
    return Total.load(std::memory_order_relaxed);
  }

  unsigned long long bucket(unsigned I) const {
    return I < NumBuckets ? Buckets[I].load(std::memory_order_relaxed) : 0;
  }

  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Total.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<unsigned long long> Buckets[NumBuckets]{};
  std::atomic<unsigned long long> Total{0};
};

/// Looks up (creating on first use) the named counter/histogram in the
/// process-global registry. The returned reference is stable for the
/// process lifetime, so hot paths resolve their instruments once and keep
/// the pointer. Names are dotted paths, e.g. "judge.candidates_total" or
/// "judge.kill.Power.observation" (docs/observability.md catalogues them).
Counter &counter(const std::string &Name);
Histogram &histogram(const std::string &Name);

/// Convenience: bump a named counter only when metrics are on. For code
/// that runs at most a few thousand times per second; hot loops should
/// cache the Counter reference or accumulate locally instead.
inline void tick(const char *Name, unsigned long long N = 1) {
  if (metricsEnabled())
    counter(Name).add(N);
}

/// Records \p Seconds into \p Name as integer microseconds when metrics
/// are on.
inline void recordSeconds(const char *Name, double Seconds) {
  if (metricsEnabled())
    histogram(Name).record(
        static_cast<unsigned long long>(Seconds * 1e6));
}

/// Zeroes every registered counter and histogram (tests and benches; the
/// instruments stay registered).
void resetMetrics();

/// Snapshot of the registry as a cats-metrics/1 JSON object:
///
///   {"schema": "cats-metrics/1",
///    "counters": {"name": N, ...},                  // nonzero only
///    "histograms": {"name": {"count": N, "sum": S,  // nonempty only
///                            "buckets": [[bucket, count], ...]}, ...}}
///
/// Keys are sorted, so equal registry states dump byte-identically.
JsonValue metricsToJson();

/// Folds \p From into \p Into (both cats-metrics/1 objects): counters sum,
/// histograms add count/sum and merge buckets by index. Returns false and
/// fills \p Error when either document is malformed.
bool mergeMetricsJson(JsonValue &Into, const JsonValue &From,
                      std::string &Error);

/// Renders a snapshot as aligned "name value" lines for the --metrics
/// stderr dump (counters, then histogram count/sum/mean lines).
std::string metricsToText();

} // namespace obs
} // namespace cats

#endif // CATS_OBS_METRICS_H
