//===- Trace.cpp - RAII spans flushed as Chrome trace events --------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

using namespace cats;
using namespace cats::obs;

namespace {

std::atomic<bool> Enabled{false};

struct TraceEvent {
  std::string Name; // repeated on "E" so Perfetto matches pairs by name
  char Phase;       // 'B' or 'E'
  double TsUs;
};

/// One buffer per thread. Appends come only from the owning thread; the
/// per-buffer mutex exists so a flush can run while other threads are
/// still live (e.g. the main thread dumping after a pool has joined).
struct ThreadBuffer {
  std::mutex Mutex;
  unsigned Tid;
  std::vector<TraceEvent> Events;
};

struct TraceState {
  std::mutex Mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> Buffers;
};

TraceState &state() {
  static TraceState S;
  return S;
}

/// Microseconds since the first instrumented instant of the process.
double nowUs() {
  static const auto Start = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

ThreadBuffer &threadBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> Buffer = [] {
    auto B = std::make_shared<ThreadBuffer>();
    TraceState &S = state();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    B->Tid = static_cast<unsigned>(S.Buffers.size()) + 1;
    S.Buffers.push_back(B);
    return B;
  }();
  return *Buffer;
}

void append(std::string Name, char Phase) {
  const double Ts = nowUs();
  ThreadBuffer &B = threadBuffer();
  std::lock_guard<std::mutex> Lock(B.Mutex);
  B.Events.push_back(TraceEvent{std::move(Name), Phase, Ts});
}

} // namespace

bool obs::traceEnabled() { return Enabled.load(std::memory_order_relaxed); }

void obs::setTraceEnabled(bool E) {
  if (E)
    nowUs(); // pin the epoch no later than enabling
  Enabled.store(E, std::memory_order_relaxed);
}

void obs::resetTrace() {
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  for (auto &B : S.Buffers) {
    std::lock_guard<std::mutex> BufferLock(B->Mutex);
    B->Events.clear();
  }
}

Span::Span(std::string NameIn) : Active(traceEnabled()) {
  if (Active) {
    Name = std::move(NameIn);
    append(Name, 'B');
  }
}

Span::~Span() {
  if (Active)
    append(std::move(Name), 'E');
}

JsonValue obs::traceToJson() {
  JsonValue Events = JsonValue::array();
  TraceState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  for (const auto &B : S.Buffers) {
    std::lock_guard<std::mutex> BufferLock(B->Mutex);
    for (const TraceEvent &E : B->Events) {
      JsonValue Event = JsonValue::object();
      Event.set("name", E.Name);
      Event.set("cat", "cats");
      Event.set("ph", std::string(1, E.Phase));
      Event.set("ts", E.TsUs);
      Event.set("pid", 1);
      Event.set("tid", B->Tid);
      Events.push(std::move(Event));
    }
  }
  JsonValue Root = JsonValue::object();
  Root.set("traceEvents", std::move(Events));
  Root.set("displayTimeUnit", "ms");
  return Root;
}

bool obs::writeTrace(const std::string &Path, std::string &Error) {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot write " + Path;
    return false;
  }
  Out << traceToJson().dump();
  if (!Out) {
    Error = "short write to " + Path;
    return false;
  }
  return true;
}
