//===- Witness.h - Per-execution verdict evidence -------------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The witness/provenance layer (docs/explain.md). A verdict from the
/// judging stack is a single bit; a Witness is the evidence behind it:
///
///  * for a forbidden (test, model) pair, one concrete candidate execution
///    satisfying the final condition plus the minimal cycle violating the
///    first failing axiom, every edge labeled by the derived relation it
///    came from (rf/co/fr/po-loc/ppo/fence:<name>/prop/...);
///  * for an allowed pair, one consistent execution realizing the final
///    condition;
///  * for the pruned backend, the partial-graph cycle that justified a
///    subtree cut (always an SC PER LOCATION argument);
///  * when no consistent candidate reaches the final condition at all, an
///    unreachable-outcome marker (there is no execution to draw).
///
/// Witnesses serialize two ways: the versioned cats-witness/1 JSON section
/// (additive in sweep reports, folded across shards by cats_merge) and
/// herd7-style DOT execution graphs (events as nodes clustered per thread,
/// labeled relation edges, the violating cycle highlighted). The capture
/// hooks live in MultiModelChecker (src/herd/Simulator.h); this header is
/// the data model and its renderers.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_OBS_WITNESS_H
#define CATS_OBS_WITNESS_H

#include "litmus/LitmusTest.h"
#include "model/Model.h"
#include "sweep/Json.h"

#include <string>
#include <vector>

namespace cats {
namespace obs {

/// Version tag of the witness JSON section.
inline constexpr const char *WitnessSchema = "cats-witness/1";

/// What a Witness is evidence of.
enum class WitnessKind : uint8_t {
  /// A consistent execution realizing the final condition (Allow).
  AllowedExecution,
  /// A satisfying execution killed by an axiom, with the violating cycle.
  AxiomCycle,
  /// A partial rf/co assignment cut by the incremental enumerator: the
  /// po-loc | com cycle on the partial graph (SC PER LOCATION evidence
  /// for a whole pruned subtree).
  PruneCut,
  /// No consistent candidate satisfies the final condition, so the
  /// forbidden verdict needs no model axiom and has no execution to show.
  UnreachableOutcome,
};

/// Wire name: "allowed-execution", "axiom-cycle", "prune-cut",
/// "unreachable-outcome".
const char *witnessKindName(WitnessKind K);

/// Parses a wire name; returns false on unknown input.
bool witnessKindFromName(const std::string &Name, WitnessKind &Out);

/// One event node of a witness graph.
struct WitnessEvent {
  EventId Id = 0;
  /// Owning thread; -1 for the fictitious initial writes.
  int Thread = -1;
  /// Rendered label, e.g. "a: Wx=1" (the paper's convention).
  std::string Desc;
  bool Init = false;
};

/// The evidence for one (test, model) verdict. Model is "*" for the
/// model-independent prune-cut witnesses.
struct Witness {
  std::string Test;
  std::string Model;
  /// "Allow" or "Forbid" — the verdict this witness backs.
  std::string Verdict;
  WitnessKind Kind = WitnessKind::AllowedExecution;
  /// axiomName() of the killing axiom; empty for allowed executions.
  std::string Axiom;
  /// Outcome key of the shown execution (empty for unreachable-outcome).
  std::string Outcome;
  /// Event nodes of the shown (possibly partial) execution.
  std::vector<WitnessEvent> Events;
  /// The execution skeleton as drawable edges: po (transitively reduced
  /// per thread), rf, co (reduced), fr.
  std::vector<LabeledEdge> Edges;
  /// The violating cycle as a closed labeled walk E0 -> ... -> E0; empty
  /// for allowed executions and unreachable outcomes.
  std::vector<LabeledEdge> Cycle;
};

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

/// Fills Events and Edges from \p Exe (nodes, reduced po/co, rf, fr).
void populateExecution(Witness &W, const Execution &Exe);

/// Witness for an allowed outcome: \p Exe realizes \p O under the model.
Witness makeAllowedWitness(const std::string &Test, const std::string &Model,
                           const Execution &Exe, const Outcome &O);

/// Witness for a killed candidate: \p M forbids \p Exe, first failing
/// axiom \p A; the cycle comes from Model::explainViolation.
Witness makeKillWitness(const std::string &Test, const Model &M, Axiom A,
                        const Execution &Exe, const Outcome &O);

/// Model-independent witness for an enumerator prune cut: \p Partial is
/// the scratch execution at the cut and \p Cycle the po-loc | com cycle
/// found on its partial graph.
Witness makePruneCutWitness(const std::string &Test, const Execution &Partial,
                            std::vector<LabeledEdge> Cycle);

/// Witness for a forbidden verdict with no satisfying consistent
/// candidate at all.
Witness makeUnreachableWitness(const std::string &Test,
                               const std::string &Model);

//===----------------------------------------------------------------------===//
// JSON (cats-witness/1)
//===----------------------------------------------------------------------===//

JsonValue witnessToJson(const Witness &W);
Expected<Witness> witnessFromJson(const JsonValue &V);

/// The report section: {"schema": "cats-witness/1", "witnesses": [...]}.
JsonValue witnessSectionToJson(const std::vector<Witness> &Witnesses);
Expected<std::vector<Witness>> witnessSectionFromJson(const JsonValue &V);

//===----------------------------------------------------------------------===//
// DOT (herd7-style execution graphs)
//===----------------------------------------------------------------------===//

/// Renders \p W as a DOT digraph: one cluster per thread (init writes at
/// top level), event descriptions as node labels, relation-labeled edges,
/// cycle edges highlighted in red with heavier pens.
std::string witnessToDot(const Witness &W);

/// A filesystem-safe file stem for \p W, e.g. "mp@Power".
std::string witnessFileStem(const Witness &W);

} // namespace obs
} // namespace cats

#endif // CATS_OBS_WITNESS_H
