//===- Witness.cpp - Per-execution verdict evidence -----------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "obs/Witness.h"

#include "support/StringUtils.h"

#include <map>
#include <set>

using namespace cats;
using namespace cats::obs;

const char *cats::obs::witnessKindName(WitnessKind K) {
  switch (K) {
  case WitnessKind::AllowedExecution:
    return "allowed-execution";
  case WitnessKind::AxiomCycle:
    return "axiom-cycle";
  case WitnessKind::PruneCut:
    return "prune-cut";
  case WitnessKind::UnreachableOutcome:
    return "unreachable-outcome";
  }
  return "?";
}

bool cats::obs::witnessKindFromName(const std::string &Name,
                                    WitnessKind &Out) {
  if (Name == "allowed-execution")
    Out = WitnessKind::AllowedExecution;
  else if (Name == "axiom-cycle")
    Out = WitnessKind::AxiomCycle;
  else if (Name == "prune-cut")
    Out = WitnessKind::PruneCut;
  else if (Name == "unreachable-outcome")
    Out = WitnessKind::UnreachableOutcome;
  else
    return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

void cats::obs::populateExecution(Witness &W, const Execution &Exe) {
  W.Events.clear();
  W.Edges.clear();
  for (const Event &E : Exe.events()) {
    WitnessEvent Node;
    Node.Id = E.Id;
    Node.Thread = E.Thread;
    Node.Desc = E.toString(Exe.LocationNames);
    Node.Init = E.IsInit;
    W.Events.push_back(std::move(Node));
  }

  // po: the per-thread successor steps only (po is a transitive total
  // order per thread; drawing its closure buries the graph).
  for (unsigned T = 0; T < Exe.numThreads(); ++T) {
    const std::vector<EventId> Thread = Exe.threadEvents(static_cast<int>(T));
    for (size_t I = 0; I + 1 < Thread.size(); ++I)
      W.Edges.push_back({Thread[I], Thread[I + 1], "po"});
  }
  // rf: every pair.
  for (auto [From, To] : Exe.Rf.pairs())
    W.Edges.push_back({From, To, "rf"});
  // co: the immediate steps (co is transitively closed per location).
  Relation CoStep = Exe.Co - Exe.Co.compose(Exe.Co);
  for (auto [From, To] : CoStep.pairs())
    W.Edges.push_back({From, To, "co"});
  // fr: every pair (fr is not an order; there is nothing to reduce).
  for (auto [From, To] : Exe.fr().pairs())
    W.Edges.push_back({From, To, "fr"});
}

Witness cats::obs::makeAllowedWitness(const std::string &Test,
                                      const std::string &Model,
                                      const Execution &Exe,
                                      const Outcome &O) {
  Witness W;
  W.Test = Test;
  W.Model = Model;
  W.Verdict = "Allow";
  W.Kind = WitnessKind::AllowedExecution;
  W.Outcome = O.key();
  populateExecution(W, Exe);
  return W;
}

Witness cats::obs::makeKillWitness(const std::string &Test, const Model &M,
                                   Axiom A, const Execution &Exe,
                                   const Outcome &O) {
  Witness W;
  W.Test = Test;
  W.Model = M.name();
  W.Verdict = "Forbid";
  W.Kind = WitnessKind::AxiomCycle;
  W.Axiom = axiomName(A);
  W.Outcome = O.key();
  populateExecution(W, Exe);
  W.Cycle = M.explainViolation(A, Exe);
  return W;
}

Witness cats::obs::makePruneCutWitness(const std::string &Test,
                                       const Execution &Partial,
                                       std::vector<LabeledEdge> Cycle) {
  Witness W;
  W.Test = Test;
  W.Model = "*";
  W.Verdict = "Forbid";
  W.Kind = WitnessKind::PruneCut;
  W.Axiom = axiomName(Axiom::ScPerLocation);
  populateExecution(W, Partial);
  W.Cycle = std::move(Cycle);
  return W;
}

Witness cats::obs::makeUnreachableWitness(const std::string &Test,
                                          const std::string &Model) {
  Witness W;
  W.Test = Test;
  W.Model = Model;
  W.Verdict = "Forbid";
  W.Kind = WitnessKind::UnreachableOutcome;
  return W;
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

namespace {

JsonValue edgesToJson(const std::vector<LabeledEdge> &Edges) {
  JsonValue Out = JsonValue::array();
  for (const LabeledEdge &E : Edges) {
    JsonValue J = JsonValue::object();
    J.set("from", static_cast<unsigned long long>(E.From));
    J.set("to", static_cast<unsigned long long>(E.To));
    J.set("label", E.Label);
    Out.push(std::move(J));
  }
  return Out;
}

std::string stringOf(const JsonValue &Obj, const char *Key) {
  const JsonValue *V = Obj.get(Key);
  return V && V->isString() ? V->asString() : std::string();
}

Status edgesFromJson(const JsonValue *V, std::vector<LabeledEdge> &Out) {
  if (!V)
    return Status::success();
  if (!V->isArray())
    return Status::error("edge list is not an array");
  for (const JsonValue &E : V->elements()) {
    if (!E.isObject())
      return Status::error("edge entry is not an object");
    const JsonValue *From = E.get("from"), *To = E.get("to");
    if (!From || !From->isNumber() || !To || !To->isNumber())
      return Status::error("edge entry without numeric endpoints");
    LabeledEdge Edge;
    Edge.From = static_cast<EventId>(From->asNumber());
    Edge.To = static_cast<EventId>(To->asNumber());
    Edge.Label = stringOf(E, "label");
    Out.push_back(std::move(Edge));
  }
  return Status::success();
}

} // namespace

JsonValue cats::obs::witnessToJson(const Witness &W) {
  JsonValue Out = JsonValue::object();
  Out.set("test", W.Test);
  Out.set("model", W.Model);
  Out.set("verdict", W.Verdict);
  Out.set("kind", witnessKindName(W.Kind));
  if (!W.Axiom.empty())
    Out.set("axiom", W.Axiom);
  if (!W.Outcome.empty())
    Out.set("outcome", W.Outcome);
  JsonValue Events = JsonValue::array();
  for (const WitnessEvent &E : W.Events) {
    JsonValue J = JsonValue::object();
    J.set("id", static_cast<unsigned long long>(E.Id));
    J.set("thread", E.Thread);
    J.set("desc", E.Desc);
    if (E.Init)
      J.set("init", true);
    Events.push(std::move(J));
  }
  Out.set("events", std::move(Events));
  Out.set("edges", edgesToJson(W.Edges));
  if (!W.Cycle.empty())
    Out.set("cycle", edgesToJson(W.Cycle));
  return Out;
}

Expected<Witness> cats::obs::witnessFromJson(const JsonValue &V) {
  using Ret = Expected<Witness>;
  if (!V.isObject())
    return Ret::error("witness entry is not an object");
  Witness W;
  W.Test = stringOf(V, "test");
  W.Model = stringOf(V, "model");
  W.Verdict = stringOf(V, "verdict");
  if (W.Test.empty() || W.Model.empty())
    return Ret::error("witness entry without test/model");
  if (!witnessKindFromName(stringOf(V, "kind"), W.Kind))
    return Ret::error("witness entry with unknown kind");
  W.Axiom = stringOf(V, "axiom");
  W.Outcome = stringOf(V, "outcome");
  if (const JsonValue *Events = V.get("events")) {
    if (!Events->isArray())
      return Ret::error("witness 'events' is not an array");
    for (const JsonValue &E : Events->elements()) {
      if (!E.isObject())
        return Ret::error("witness event is not an object");
      const JsonValue *Id = E.get("id"), *Thread = E.get("thread");
      if (!Id || !Id->isNumber())
        return Ret::error("witness event without an id");
      WitnessEvent Node;
      Node.Id = static_cast<EventId>(Id->asNumber());
      Node.Thread =
          Thread && Thread->isNumber() ? static_cast<int>(Thread->asNumber())
                                       : -1;
      Node.Desc = stringOf(E, "desc");
      const JsonValue *Init = E.get("init");
      Node.Init = Init && Init->isBool() && Init->asBool();
      W.Events.push_back(std::move(Node));
    }
  }
  if (Status S = edgesFromJson(V.get("edges"), W.Edges); S.failed())
    return Ret::error(S.message());
  if (Status S = edgesFromJson(V.get("cycle"), W.Cycle); S.failed())
    return Ret::error(S.message());
  return W;
}

JsonValue cats::obs::witnessSectionToJson(
    const std::vector<Witness> &Witnesses) {
  JsonValue Out = JsonValue::object();
  Out.set("schema", WitnessSchema);
  JsonValue List = JsonValue::array();
  for (const Witness &W : Witnesses)
    List.push(witnessToJson(W));
  Out.set("witnesses", std::move(List));
  return Out;
}

Expected<std::vector<Witness>>
cats::obs::witnessSectionFromJson(const JsonValue &V) {
  using Ret = Expected<std::vector<Witness>>;
  if (!V.isObject() || stringOf(V, "schema") != WitnessSchema)
    return Ret::error("not a cats-witness/1 section");
  const JsonValue *List = V.get("witnesses");
  if (!List || !List->isArray())
    return Ret::error("witness section without a 'witnesses' array");
  std::vector<Witness> Out;
  for (const JsonValue &E : List->elements()) {
    auto W = witnessFromJson(E);
    if (!W)
      return Ret::error(W.message());
    Out.push_back(W.take());
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// DOT
//===----------------------------------------------------------------------===//

namespace {

std::string dotEscape(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

/// Edge colors in the herd7 palette spirit: communications stand out,
/// program order stays black.
const char *edgeColor(const std::string &Label) {
  if (Label.rfind("rf", 0) == 0)
    return "red";
  if (Label.rfind("co", 0) == 0)
    return "blue";
  if (Label.rfind("fr", 0) == 0 && Label.rfind("fence", 0) != 0)
    return "#b8860b";
  if (Label.rfind("fence", 0) == 0 || Label == "ppo")
    return "darkgreen";
  if (Label == "prop")
    return "purple";
  return "black";
}

} // namespace

std::string cats::obs::witnessToDot(const Witness &W) {
  std::string Out;
  Out += "digraph \"" + dotEscape(W.Test + "@" + W.Model) + "\" {\n";
  std::string Title = W.Test + " @ " + W.Model + ": " + W.Verdict;
  if (!W.Axiom.empty())
    Title += " (" + W.Axiom + ")";
  if (W.Kind == WitnessKind::PruneCut)
    Title += " [prune cut]";
  else if (W.Kind == WitnessKind::UnreachableOutcome)
    Title += " [outcome unreachable]";
  Out += "  label=\"" + dotEscape(Title) + "\";\n";
  Out += "  labelloc=\"t\";\n";
  Out += "  node [shape=box, fontname=\"Helvetica\"];\n";
  Out += "  edge [fontname=\"Helvetica\"];\n";

  // Nodes: init writes at top level, program events clustered per thread.
  std::map<int, std::vector<const WitnessEvent *>> ByThread;
  for (const WitnessEvent &E : W.Events) {
    if (E.Init || E.Thread < 0)
      Out += strFormat("  e%u [label=\"%s\", style=dashed];\n", E.Id,
                       dotEscape(E.Desc).c_str());
    else
      ByThread[E.Thread].push_back(&E);
  }
  for (const auto &[Thread, Events] : ByThread) {
    Out += strFormat("  subgraph cluster_t%d {\n", Thread);
    Out += strFormat("    label=\"Thread %d\";\n", Thread);
    for (const WitnessEvent *E : Events)
      Out += strFormat("    e%u [label=\"%s\"];\n", E->Id,
                       dotEscape(E->Desc).c_str());
    Out += "  }\n";
  }

  // Cycle edges first (highlighted); skeleton edges on the same (from,
  // to) pair are suppressed so the violation reads as one loop.
  std::set<std::pair<EventId, EventId>> InCycle;
  for (const LabeledEdge &E : W.Cycle) {
    InCycle.emplace(E.From, E.To);
    Out += strFormat(
        "  e%u -> e%u [label=\"%s\", color=\"red\", fontcolor=\"red\", "
        "penwidth=2.4];\n",
        E.From, E.To, dotEscape(E.Label).c_str());
  }
  for (const LabeledEdge &E : W.Edges) {
    if (InCycle.count({E.From, E.To}))
      continue;
    const char *Color = edgeColor(E.Label);
    Out += strFormat(
        "  e%u -> e%u [label=\"%s\", color=\"%s\", fontcolor=\"%s\"%s];\n",
        E.From, E.To, dotEscape(E.Label).c_str(), Color, Color,
        E.Label == "po" ? "" : ", constraint=false");
  }
  Out += "}\n";
  return Out;
}

std::string cats::obs::witnessFileStem(const Witness &W) {
  std::string Raw = W.Test + "@" + (W.Model == "*" ? "all" : W.Model);
  std::string Out;
  for (char C : Raw) {
    const bool Safe = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                      (C >= '0' && C <= '9') || C == '.' || C == '-' ||
                      C == '_' || C == '+' || C == '@';
    Out += Safe ? C : '_';
  }
  return Out;
}
